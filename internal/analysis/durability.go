package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerDurability flags unchecked error returns at persistence call
// sites — the writes the journaled-durability guarantee (crash recovery,
// replay-zero-fresh) rests on. Covered callees:
//
//   - any error-returning method on a type named Journal or Store (the
//     job journal and the utility store)
//   - *os.File Write/WriteString/WriteAt/Sync/Truncate, always
//   - *os.File Close, unless the file provably came from os.Open in the
//     same function (closing a read-only file cannot lose data)
//
// "Unchecked" covers expression statements, defer/go statements, and
// assignments that send the error to the blank identifier. Deliberate
// discards (best-effort cleanup on an error path) annotate the site with
// //fedvallint:allow(durability) and a reason.
var AnalyzerDurability = &Analyzer{
	Name: "durability",
	Doc:  "journal/store/file write errors are checked, not discarded",
	Run:  runDurability,
}

func runDurability(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var fn *ast.FuncDecl
			switch n := n.(type) {
			case *ast.FuncDecl:
				fn = n
			default:
				return true
			}
			if fn.Body == nil {
				return true
			}
			readOnly := readOnlyFiles(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						checkDurabilityCall(pass, call, readOnly, "discarded")
					}
				case *ast.DeferStmt:
					checkDurabilityCall(pass, n.Call, readOnly, "discarded by defer")
				case *ast.GoStmt:
					checkDurabilityCall(pass, n.Call, readOnly, "discarded by go statement")
				case *ast.AssignStmt:
					checkBlankedError(pass, n, readOnly)
				}
				return true
			})
			return true
		})
	}
}

// checkBlankedError flags assignments whose error result from a
// persistence call lands in the blank identifier.
func checkBlankedError(pass *Pass, as *ast.AssignStmt, readOnly map[types.Object]bool) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	sig := calleeSignature(pass, call)
	if sig == nil || len(as.Lhs) != sig.Results().Len() {
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if !isErrorType(sig.Results().At(i).Type()) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			checkDurabilityCall(pass, call, readOnly, "assigned to _")
		}
		return
	}
}

// checkDurabilityCall reports the call if it is a persistence write whose
// error is being thrown away.
func checkDurabilityCall(pass *Pass, call *ast.CallExpr, readOnly map[types.Object]bool, how string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	sig := calleeSignature(pass, call)
	if sig == nil || !returnsError(sig) {
		return
	}
	recvType := pass.TypeOf(sel.X)
	if recvType == nil {
		return
	}
	if ptr, ok := recvType.(*types.Pointer); ok {
		recvType = ptr.Elem()
	}
	named, ok := recvType.(*types.Named)
	if !ok {
		return
	}
	name, method := named.Obj().Name(), sel.Sel.Name
	switch {
	case name == "Journal" || name == "Store":
		pass.Reportf(call.Pos(), "error from %s.%s %s: persistence write errors must be checked so durability degrades loudly", name, method, how)
	case name == "File" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "os":
		switch method {
		case "Write", "WriteString", "WriteAt", "Sync", "Truncate":
			pass.Reportf(call.Pos(), "error from os.File.%s %s: file write errors must be checked", method, how)
		case "Close":
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && readOnly[pass.Info.Uses[id]] {
				return
			}
			pass.Reportf(call.Pos(), "error from os.File.Close %s on a possibly written file: Close flushes, so its error is a write error", how)
		}
	}
}

// readOnlyFiles finds locals assigned from os.Open in the function body —
// files that are provably read-only, whose Close errors carry no data.
func readOnlyFiles(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" || fn.Name() != "Open" {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// returnsError reports whether the signature's results include error.
func returnsError(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the predeclared error type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
