package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"

	"fedshap/internal/obs"
)

// MaxMetricLabels is the per-registration label-cardinality ceiling:
// more label keys than this on one series multiplies scrape cardinality
// past what the dashboards and the in-memory registry are sized for.
const MaxMetricLabels = 3

// AnalyzerObsMetrics runs the repo's metric naming convention (obs.Lint —
// the same code path TestMetricNameLint exercises against the live
// registries) over every metric name registered anywhere in the source,
// at compile time: names and help strings must be compile-time constants
// (so the tool can see them), help must be non-empty, names must pass
// obs.Lint for their series type, and labels must come as balanced
// "key","value" pairs under the cardinality ceiling.
var AnalyzerObsMetrics = &Analyzer{
	Name: "obsmetrics",
	Doc:  "registered metric names pass obs.Lint and stay under the label ceiling",
	Run:  runObsMetrics,
}

// MetricProblems validates one metric registration the way the analyzer
// does: obs.Lint on the (name, type) pair plus the label ceiling.
// TestMetricNameLint shares this entry point for the live registries
// (which do not expose label counts — pass 0).
func MetricProblems(name string, typ obs.Type, labelKeys int) []string {
	problems := obs.Lint(map[string]obs.Type{name: typ})
	if labelKeys > MaxMetricLabels {
		problems = append(problems, fmt.Sprintf("%s: %d label keys exceeds the cardinality ceiling of %d", name, labelKeys, MaxMetricLabels))
	}
	return problems
}

// registrars maps obs.Registry method names to the index where variadic
// label pairs start (-1 when the method takes no static labels) and the
// registered series type ("" when the type is an argument).
var registrars = map[string]struct {
	labelStart int
	typ        obs.Type
}{
	"NewCounter":   {2, obs.TypeCounter},
	"NewGauge":     {2, obs.TypeGauge},
	"NewGaugeFunc": {3, obs.TypeGauge},
	"NewHistogram": {3, obs.TypeHistogram},
	"NewCollector": {-1, ""},
}

func runObsMetrics(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			reg, ok := registrars[sel.Sel.Name]
			if !ok || !isRegistryRecv(pass, sel.X) || len(call.Args) < 2 {
				return true
			}
			name, ok := constString(pass, call.Args[0])
			if !ok {
				pass.Reportf(call.Args[0].Pos(), "metric name is not a compile-time constant, so fedvallint cannot lint it; use a string literal or const")
				return true
			}
			if help, ok := constString(pass, call.Args[1]); !ok {
				pass.Reportf(call.Args[1].Pos(), "help for metric %s is not a compile-time constant, so fedvallint cannot verify it; use a string literal or const", name)
			} else if help == "" {
				pass.Reportf(call.Args[1].Pos(), "metric %s has empty help text: every family needs a scrape-visible description", name)
			}
			typ := reg.typ
			if sel.Sel.Name == "NewCollector" {
				if len(call.Args) < 3 {
					return true
				}
				s, ok := constString(pass, call.Args[2])
				if !ok {
					pass.Reportf(call.Args[2].Pos(), "collector type for %s is not a compile-time constant", name)
					return true
				}
				typ = obs.Type(s)
			}
			labelKeys := 0
			if reg.labelStart >= 0 && len(call.Args) > reg.labelStart && call.Ellipsis == 0 {
				labels := len(call.Args) - reg.labelStart
				if labels%2 != 0 {
					pass.Reportf(call.Args[reg.labelStart].Pos(), "metric %s has an odd number of label arguments: labels are \"key\",\"value\" pairs", name)
				}
				labelKeys = labels / 2
			}
			for _, problem := range MetricProblems(name, typ, labelKeys) {
				pass.Reportf(call.Args[0].Pos(), "metric %s", problem)
			}
			return true
		})
	}
}

// isRegistryRecv reports whether the receiver expression is an
// obs.Registry (matched by type name, so the golden testdata can stub
// it).
func isRegistryRecv(pass *Pass, x ast.Expr) bool {
	t := pass.TypeOf(x)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// constString resolves e to its compile-time string value.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
