// Package analysis is fedvallint's analyzer framework: a dependency-free
// (stdlib go/parser + go/types + source importer) static analysis suite
// that machine-checks the project invariants the runtime test suites can
// only catch after the fact — bit-identical valuations across worker
// counts, journaled durability, cancellation that reaches the hot loops,
// lock discipline, and the metric naming convention.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// without the dependency: a Loader parses and type-checks packages, each
// Analyzer walks the typed ASTs through a Pass and reports Diagnostics,
// and Run filters reports through //fedvallint:allow suppression
// directives. cmd/fedvallint is the CLI; the golden testdata suites under
// testdata/src pin each analyzer's behaviour.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one reported invariant violation, positioned for
// file:line:col output and machine consumption (-json).
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Check)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // import path the package was checked under
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil when untyped.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string // one line, shown by fedvallint -list
	Run  func(*Pass)
}

// DirectiveCheck is the pseudo-check name under which malformed
// //fedvallint:allow directives are reported. It is not a registered
// analyzer and cannot itself be suppressed, so stale or typo'd
// suppressions fail the build instead of rotting silently.
const DirectiveCheck = "directive"

// Analyzers returns the full fedvallint suite in stable (alphabetical)
// order. fedvallint -list prints exactly these names.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerCtxThread,
		AnalyzerDeterminism,
		AnalyzerDurability,
		AnalyzerLockHygiene,
		AnalyzerObsMetrics,
	}
}

// Run executes the analyzers over the loaded packages, validates
// suppression directives, filters suppressed diagnostics, and returns the
// survivors sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup, dirDiags := collectDirectives(pkg, known)
		diags = append(diags, dirDiags...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Path:     pkg.Path,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				if sup.allows(a.Name, d.File, d.Line) {
					return
				}
				diags = append(diags, d)
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}
