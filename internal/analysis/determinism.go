package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// valueAffecting lists the import-path fragments of packages whose code
// feeds valuation results, problem fingerprints or serialized output —
// the places where an unsorted map range, an unseeded global RNG or a
// wall-clock read silently breaks the bit-identity contract the
// parallel-determinism suite pins at runtime.
var valueAffecting = []string{
	"/internal/shapley",
	"/internal/fl",
	"/internal/model",
	"/internal/tensor",
	"/internal/utility",
}

// AnalyzerDeterminism flags nondeterminism hazards inside value-affecting
// packages: range over a map (iteration order varies run to run), calls
// to the global math/rand source (shared, unseeded, not replayable), and
// time.Now (wall-clock values leaking into results). Sites that are
// provably value-neutral — a latency measurement, a map range whose body
// is order-independent — carry a //fedvallint:allow(determinism)
// annotation saying why.
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "no map ranges, global math/rand or time.Now in value-affecting packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	affecting := false
	for _, frag := range valueAffecting {
		if strings.Contains(pass.Path, frag) {
			affecting = true
			break
		}
	}
	if !affecting {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.X.Pos(),
							"range over map %s: iteration order is nondeterministic and can break bit-identical valuations; iterate sorted keys instead", types.TypeString(t, types.RelativeTo(pass.Pkg)))
					}
				}
			case *ast.SelectorExpr:
				obj, ok := pass.Info.Uses[n.Sel]
				if !ok {
					return true
				}
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "math/rand", "math/rand/v2":
					switch fn.Name() {
					case "New", "NewSource", "NewPCG", "NewChaCha8":
						// Constructors for explicitly seeded generators are
						// exactly what the rule steers code toward.
					default:
						pass.Reportf(n.Pos(),
							"%s.%s uses the global math/rand source: unseeded and shared, so draws are not replayable; use a seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
					}
				case "time":
					if fn.Name() == "Now" {
						pass.Reportf(n.Pos(),
							"time.Now in a value-affecting package: wall-clock reads must not feed values or fingerprints")
					}
				}
			}
			return true
		})
	}
}
