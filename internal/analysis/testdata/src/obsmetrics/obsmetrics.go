// Package obsmetrics is golden testdata for the metric-registration
// analyzer. Registry stubs fedshap/internal/obs.Registry: the analyzer
// matches registrar methods by receiver type name, so the suite needs no
// import of the real package.
package obsmetrics

type Registry struct{}

func (r *Registry) NewCounter(name, help string, labels ...string) int { return 0 }

func (r *Registry) NewGauge(name, help string, labels ...string) int { return 0 }

func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...string) {}

func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...string) int {
	return 0
}

func (r *Registry) NewCollector(name, help, typ string, collect func()) {}

func register(r *Registry, dynamic string) {
	r.NewCounter("fedvald_good_total", "A well-named counter.")
	r.NewCounter("fedvald_bad_counter", "Missing suffix.") // want "counter must end in _total"
	r.NewCounter("wrong_prefix_total", "Missing prefix.")  // want "process prefix"
	r.NewGauge("fedvald_depth_jobs", "A well-named gauge.")
	r.NewGauge("fedvald_depth", "Bad gauge suffix.") // want "gauge must end"
	r.NewHistogram("fedvald_latency_seconds", "A histogram.", nil)
	r.NewHistogram("fedvald_latency", "Bad histogram suffix.", nil)                                    // want "histogram must end"
	r.NewCounter(dynamic, "Dynamic name.")                                                             // want "not a compile-time constant"
	r.NewCounter("fedvald_nohelp_total", "")                                                           // want "empty help text"
	r.NewCounter("fedvald_varhelp_total", helpText())                                                  // want "help for metric"
	r.NewCounter("fedvald_odd_total", "Odd labels.", "k")                                              // want "odd number of label arguments"
	r.NewCounter("fedvald_wide_total", "Too many label keys.", "a", "1", "b", "2", "c", "3", "d", "4") // want "cardinality ceiling"
	r.NewCollector("fedvald_col_total", "A collector.", "counter", nil)
	r.NewCollector("fedvald_col_bad", "A collector.", "counter", nil) // want "counter must end in _total"
	//fedvallint:allow(obsmetrics) deliberately off-convention, pinned by the golden suite
	r.NewCounter("fedvald_suppressed", "Bad name, allowed.")
}

func helpText() string { return "not a constant" }
