// Package lockhygiene is golden testdata for the lock-hygiene analyzer.
package lockhygiene

import "sync"

type counter struct {
	mu sync.Mutex
	// n is the running count; guarded by mu.
	n int
	// name is immutable after construction, so it needs no guard.
	name string
}

func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) Peek() int {
	return c.n // want "guarded by mu"
}

func (c *counter) peekLocked() int {
	//fedvallint:allow(lockhygiene) locked helper by contract; callers hold c.mu
	return c.n
}

func (c *counter) Name() string {
	return c.name
}

func (c counter) Copied() string { // want "value receiver of lock-containing type"
	return c.name
}

func consume(c counter) int { // want "copies lock-containing type"
	return 0
}

func consumeOK(c *counter) int {
	return 0
}

func derefCopy(p *counter) string {
	v := *p // want "copies lock-containing value"
	return v.name
}
