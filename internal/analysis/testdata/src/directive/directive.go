// Package directive is golden testdata for suppression-directive
// validation. The harness loads it under a value-affecting import path so
// both ctxthread and determinism are armed, then asserts the exact
// diagnostic set in code (want-comments cannot annotate directive lines:
// a trailing marker would become part of the directive's reason).
package directive

import "context"

func leaf(ctx context.Context) error { return ctx.Err() }

// An allow naming a check that does not exist is itself a diagnostic and
// suppresses nothing, so the Background call below still fires.
func unknownCheck() error {
	//fedvallint:allow(bogus) not a real check
	ctx := context.Background()
	return leaf(ctx)
}

// An allow without a reason is a diagnostic and is not registered.
func missingReason() error {
	//fedvallint:allow(ctxthread)
	ctx := context.Background()
	return leaf(ctx)
}

// A fedvallint: comment that is not allow(...) is malformed.
func malformed() error {
	//fedvallint:allowctxthread whatever
	ctx := context.Background()
	return leaf(ctx)
}

// A well-formed allow suppresses the line immediately below it.
func wellFormed() error {
	//fedvallint:allow(ctxthread) golden fixture for effective suppression
	ctx := context.Background()
	return leaf(ctx)
}

// A comma list with one reason suppresses several checks at once.
func commaList(ctx context.Context, m map[string]int) int {
	total := 0
	//fedvallint:allow(determinism,ctxthread) golden fixture for comma-separated check lists
	for _, v := range m {
		total += v
	}
	_ = ctx
	return total
}
