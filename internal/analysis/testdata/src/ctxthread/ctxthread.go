// Package ctxthread is golden testdata for the context-threading
// analyzer.
package ctxthread

import "context"

func leaf(ctx context.Context) error { return ctx.Err() }

func threadedOK(ctx context.Context) error {
	return leaf(ctx)
}

func derivedOK(ctx context.Context) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return leaf(cctx)
}

func drops(ctx context.Context) error {
	return leaf(context.Background()) // want "already receives a ctx"
}

func todoDrops(ctx context.Context) error {
	return leaf(context.TODO()) // want "already receives a ctx"
}

func fresh() error {
	ctx := context.Background() // want "outside package main"
	return leaf(ctx)
}

func allowedFallback(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background() //fedvallint:allow(ctxthread) nil-ctx compat fallback
	}
	return leaf(ctx)
}

func nilCtx() error {
	return leaf(nil) // want "nil passed for a context.Context"
}

func closureDrops(ctx context.Context) func() error {
	return func() error {
		return leaf(context.Background()) // want "already receives a ctx"
	}
}
