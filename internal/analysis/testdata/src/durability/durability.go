// Package durability is golden testdata for the durability analyzer.
// Journal and Store stub the persistence layer: the analyzer matches
// error-returning methods on those type names.
package durability

import "os"

type Journal struct{}

func (j *Journal) Append(rec string) error { return nil }

type Store struct{}

func (s *Store) Append(k string, v float64) error { return nil }

func journalDiscard(j *Journal) {
	j.Append("x") // want "Journal.Append discarded"
}

func journalDefer(j *Journal) {
	defer j.Append("x") // want "discarded by defer"
}

func journalBlank(j *Journal) {
	_ = j.Append("x") // want "assigned to _"
}

func journalAllowed(j *Journal) {
	//fedvallint:allow(durability) best-effort write in golden testdata
	_ = j.Append("x")
}

func journalChecked(j *Journal) error {
	return j.Append("x")
}

func storeDiscard(s *Store) {
	s.Append("fp", 1) // want "Store.Append discarded"
}

func fileWrites(f *os.File) {
	f.Write(nil)  // want "os.File.Write discarded"
	f.Sync()      // want "os.File.Sync discarded"
	go f.Sync()   // want "discarded by go statement"
	f.Truncate(0) // want "os.File.Truncate discarded"
}

func writableClose() error {
	f, err := os.Create("out")
	if err != nil {
		return err
	}
	defer f.Close() // want "possibly written file"
	_, werr := f.WriteString("x")
	return werr
}

func readOnlyCloseOK() error {
	f, err := os.Open("in")
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 8)
	_, rerr := f.Read(buf)
	return rerr
}

func checkedCloseOK() error {
	f, err := os.Create("out")
	if err != nil {
		return err
	}
	_, err = f.WriteString("x")
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
