// Package shapley is golden testdata for the determinism analyzer. The
// golden harness type-checks it under the import path of a real
// value-affecting package (fedshap/internal/shapley), which is what arms
// the analyzer; the same files checked under a neutral path must produce
// no diagnostics.
package shapley

import (
	"math/rand"
	"time"
)

func mapRange(m map[string]int) int {
	total := 0
	for k, v := range m { // want "range over map"
		total += v + len(k)
	}
	//fedvallint:allow(determinism) order-independent sum, pinned by the golden suite
	for _, v := range m {
		total += v
	}
	return total
}

func sliceRangeOK(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

func globalRand() float64 {
	return rand.Float64() // want "global math/rand"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand"
}

func seededRandOK(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

func annotatedClock() time.Time {
	return time.Now() //fedvallint:allow(determinism) latency telemetry only, never feeds values
}
