package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// AnalyzerLockHygiene enforces mutex discipline: no lock-containing
// value copies (value receivers, by-value parameters, dereference
// copies — the copies go vet misses alongside the ones it catches), and
// fields annotated "guarded by mu" may only be touched by methods that
// actually lock mu. Helper methods that run with the lock already held
// annotate the access site with //fedvallint:allow(lockhygiene) and say
// which caller holds the lock.
var AnalyzerLockHygiene = &Analyzer{
	Name: "lockhygiene",
	Doc:  "no copied mutexes; 'guarded by mu' fields only touched under the lock",
	Run:  runLockHygiene,
}

// Dots are only consumed when followed by another identifier segment, so
// a sentence-ending period after "guarded by mu." is not part of the name.
var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)`)

func runLockHygiene(pass *Pass) {
	guards := collectGuards(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkLockCopies(pass, n)
				checkGuardedFields(pass, n, guards)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if star, ok := ast.Unparen(rhs).(*ast.StarExpr); ok {
						if t := pass.TypeOf(rhs); t != nil && containsLock(t, nil) {
							pass.Reportf(star.Pos(), "assignment copies lock-containing value of type %s", typeName(pass, t))
						}
					}
				}
			}
			return true
		})
	}
}

// checkLockCopies flags value receivers and by-value parameters whose
// types contain a sync.Mutex or sync.RWMutex.
func checkLockCopies(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			if t := pass.TypeOf(field.Type); t != nil {
				if _, isPtr := t.(*types.Pointer); !isPtr && containsLock(t, nil) {
					pass.Reportf(field.Pos(), "method %s has a value receiver of lock-containing type %s: each call locks a copy; use a pointer receiver", fd.Name.Name, typeName(pass, t))
				}
			}
		}
	}
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); !isPtr && containsLock(t, nil) {
			pass.Reportf(field.Pos(), "parameter of %s copies lock-containing type %s: pass a pointer", fd.Name.Name, typeName(pass, t))
		}
	}
}

// guard records one "// guarded by mu" annotation: fields of a struct
// type that must only be accessed while the struct's own named mutex
// field is held.
type guard struct {
	recv   types.Type // the named struct type
	fields map[string]bool
	mu     string // mutex field name on the same struct
}

// collectGuards scans struct declarations for fields whose doc or line
// comment says "guarded by <name>". Annotations naming a mutex that is
// not a lock-typed field of the same struct (e.g. "guarded by
// Coordinator.mu" on a type owned by another struct's lock) are out of
// reach for a per-method check and are skipped.
func collectGuards(pass *Pass) []*guard {
	var guards []*guard
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			def := pass.Info.Defs[ts.Name]
			if def == nil {
				return true
			}
			byMu := make(map[string]*guard)
			for _, field := range st.Fields.List {
				muName, ok := guardAnnotation(field)
				if !ok || !structHasLockField(st, pass, muName) {
					continue
				}
				g := byMu[muName]
				if g == nil {
					g = &guard{recv: def.Type(), fields: make(map[string]bool), mu: muName}
					byMu[muName] = g
					guards = append(guards, g)
				}
				for _, name := range field.Names {
					g.fields[name.Name] = true
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's "guarded by"
// comment, using the last dot-segment so "guarded by c.mu" names mu.
func guardAnnotation(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			name := m[1]
			if i := strings.LastIndexByte(name, '.'); i >= 0 {
				name = name[i+1:]
			}
			return name, true
		}
	}
	return "", false
}

// structHasLockField reports whether the struct literal declares a field
// of the given name whose type contains a lock.
func structHasLockField(st *ast.StructType, pass *Pass, name string) bool {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name == name {
				t := pass.TypeOf(field.Type)
				return t != nil && containsLock(t, nil)
			}
		}
	}
	return false
}

// checkGuardedFields verifies that a method touching a guarded field
// locks the guarding mutex somewhere in its body.
func checkGuardedFields(pass *Pass, fd *ast.FuncDecl, guards []*guard) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 || fd.Body == nil {
		return
	}
	recvIdent := fd.Recv.List[0].Names[0]
	recvObj := pass.Info.Defs[recvIdent]
	if recvObj == nil {
		return
	}
	recvType := recvObj.Type()
	if ptr, ok := recvType.(*types.Pointer); ok {
		recvType = ptr.Elem()
	}
	for _, g := range guards {
		if !types.Identical(g.recv, recvType) {
			continue
		}
		var firstAccess *ast.SelectorExpr
		locked := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok || pass.Info.Uses[base] != recvObj {
				// Lock calls through the receiver look like recv.mu.Lock():
				// sel.X is itself a selector on the receiver.
				if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
					if b, ok := ast.Unparen(inner.X).(*ast.Ident); ok && pass.Info.Uses[b] == recvObj &&
						inner.Sel.Name == g.mu && isLockMethod(sel.Sel.Name) {
						locked = true
					}
				}
				return true
			}
			if g.fields[sel.Sel.Name] && firstAccess == nil {
				firstAccess = sel
			}
			return true
		})
		if firstAccess != nil && !locked {
			pass.Reportf(firstAccess.Pos(), "field %s is guarded by %s but method %s never locks it", firstAccess.Sel.Name, g.mu, fd.Name.Name)
		}
	}
}

// isLockMethod reports whether name is a mutex acquire method.
func isLockMethod(name string) bool {
	switch name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return true
	}
	return false
}

// containsLock reports whether t holds a sync.Mutex or sync.RWMutex by
// value (directly, through struct fields, embedded structs or arrays).
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
		return containsLock(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLock(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(t.Elem(), seen)
	}
	return false
}

// typeName renders t relative to the package being analyzed.
func typeName(pass *Pass, t types.Type) string {
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}
