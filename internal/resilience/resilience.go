// Package resilience is the repo's dependency-free fault-handling
// toolkit: retry policies (exponential backoff with full jitter, attempt
// caps, per-attempt deadlines), a windowed failure tracker that benches
// flapping peers with exponentially growing penalties, and injectable
// fault hooks that let tests and the chaos harness fail I/O paths on
// demand. Every layer of the valuation stack threads through it — the
// daemon's degraded-mode persistence, the coordinator's worker
// quarantine, the worker's reconnect loop, and the HTTP client's
// retry-on-429 — so backoff and failure policy live in exactly one
// place instead of being re-invented per call site.
//
// The package imports only the standard library and is safe for
// concurrent use.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Policy describes a retry schedule: exponential backoff with full
// jitter (delays drawn uniformly from [0, min(Max, Initial·Factor^n)]),
// optionally bounded by an attempt cap and a per-attempt deadline. The
// zero value retries forever with 100ms→30s full-jitter backoff.
//
// Full jitter (rather than jittering around the midpoint) is
// deliberate: a fleet of workers reconnecting after a coordinator
// restart, or a burst of clients replaying 429'd submissions, must not
// re-synchronise into thundering herds.
type Policy struct {
	// Initial is the backoff ceiling for the first retry (default 100ms).
	Initial time.Duration
	// Max caps the backoff ceiling (default 30s).
	Max time.Duration
	// Factor is the per-attempt ceiling growth (default 2).
	Factor float64
	// MaxAttempts bounds total attempts, the first included; 0 retries
	// until the context is done or the error is Permanent.
	MaxAttempts int
	// AttemptTimeout, when > 0, bounds each attempt with its own
	// deadline via context.WithTimeout.
	AttemptTimeout time.Duration
	// Rand supplies jitter in [0,1); nil uses math/rand. Injectable so
	// tests get deterministic schedules.
	Rand func() float64
	// Sleep waits between attempts; nil sleeps on the context. Injectable
	// so tests run without wall-clock delays.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Delay returns the jittered backoff before retry number attempt
// (0-based: the delay after the first failure is Delay(0)).
func (p Policy) Delay(attempt int) time.Duration {
	initial := p.Initial
	if initial <= 0 {
		initial = 100 * time.Millisecond
	}
	max := p.Max
	if max <= 0 {
		max = 30 * time.Second
	}
	factor := p.Factor
	if factor <= 1 {
		factor = 2
	}
	ceil := float64(initial) * math.Pow(factor, float64(attempt))
	if ceil > float64(max) || ceil <= 0 { // <= 0: float overflow
		ceil = float64(max)
	}
	r := rand.Float64
	if p.Rand != nil {
		r = p.Rand
	}
	return time.Duration(r() * ceil)
}

// Do runs fn until it succeeds, returns a Permanent error, exhausts
// MaxAttempts, or ctx is done. Between attempts it sleeps the jittered
// backoff — unless the error carries an explicit server hint
// (RetryAfterHint, e.g. an HTTP 429's Retry-After), which takes
// precedence: the server knows its own drain rate better than any
// client-side schedule. The last attempt's error is returned, unwrapped
// from any Permanent marker.
func (p Policy) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background() //fedvallint:allow(ctxthread) nil-ctx compat fallback; callers that care pass their own
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	for attempt := 0; ; attempt++ {
		err := p.runAttempt(ctx, fn)
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if p.MaxAttempts > 0 && attempt+1 >= p.MaxAttempts {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		delay := p.Delay(attempt)
		if hint, ok := retryAfterHint(err); ok && hint > 0 {
			delay = hint
		}
		if serr := sleep(ctx, delay); serr != nil {
			return err
		}
	}
}

// runAttempt executes one attempt under the per-attempt deadline.
func (p Policy) runAttempt(ctx context.Context, fn func(ctx context.Context) error) error {
	if p.AttemptTimeout > 0 {
		actx, cancel := context.WithTimeout(ctx, p.AttemptTimeout)
		defer cancel()
		return fn(actx)
	}
	return fn(ctx)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// permanentError marks an error no retry can fix.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Policy.Do stops retrying and returns it
// immediately — the marker for 4xx-style failures where repeating the
// call can only repeat the answer. Permanent(nil) is nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// RetryAfterHinter is implemented by errors that carry the server's own
// back-pressure signal (an HTTP 429/503 Retry-After). Policy.Do prefers
// the hint over its computed backoff.
type RetryAfterHinter interface{ RetryAfterHint() time.Duration }

// retryAfterHint extracts the innermost Retry-After hint from an error
// chain.
func retryAfterHint(err error) (time.Duration, bool) {
	for err != nil {
		if h, ok := err.(RetryAfterHinter); ok {
			return h.RetryAfterHint(), true
		}
		err = errors.Unwrap(err)
	}
	return 0, false
}

// TrackerConfig tunes a failure Tracker. The zero value of every field
// selects a default.
type TrackerConfig struct {
	// Threshold is the failure count within Window that benches a key
	// (default 3).
	Threshold int
	// Window is the sliding window failures are counted in (default 1m).
	Window time.Duration
	// BasePenalty is the first bench duration (default 5s). Each
	// subsequent bench doubles it, up to MaxPenalty.
	BasePenalty time.Duration
	// MaxPenalty caps the exponential bench growth (default 5m).
	MaxPenalty time.Duration
	// Now supplies the clock; nil uses time.Now. Injectable for tests.
	Now func() time.Time
}

func (c *TrackerConfig) fillDefaults() {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.BasePenalty <= 0 {
		c.BasePenalty = 5 * time.Second
	}
	if c.MaxPenalty <= 0 {
		c.MaxPenalty = 5 * time.Minute
	}
	if c.MaxPenalty < c.BasePenalty {
		c.MaxPenalty = c.BasePenalty
	}
}

// Tracker counts failures per key inside a sliding window and benches
// keys that flap: Threshold failures within Window earn a bench whose
// duration doubles with every repeat offence (BasePenalty, capped at
// MaxPenalty). The evalnet coordinator keys it by worker name to
// quarantine machines that crash-loop against the fleet.
type Tracker struct {
	cfg TrackerConfig

	mu      sync.Mutex
	entries map[string]*trackerEntry
}

type trackerEntry struct {
	fails        []time.Time
	benches      int
	benchedUntil time.Time
}

// NewTracker builds a failure tracker.
func NewTracker(cfg TrackerConfig) *Tracker {
	cfg.fillDefaults()
	return &Tracker{cfg: cfg, entries: make(map[string]*trackerEntry)}
}

func (t *Tracker) now() time.Time {
	if t.cfg.Now != nil {
		return t.cfg.Now()
	}
	return time.Now()
}

// pruneLocked drops failures that aged out of the window.
func (e *trackerEntry) pruneLocked(cutoff time.Time) {
	i := 0
	for i < len(e.fails) && e.fails[i].Before(cutoff) {
		i++
	}
	e.fails = e.fails[i:]
}

// Fail records one failure for key. When the failure count inside the
// window reaches the threshold, the key is benched and the failure
// window resets; the returned until is the bench expiry (zero when the
// key was not benched by this failure).
func (t *Tracker) Fail(key string) (benched bool, until time.Time) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[key]
	if e == nil {
		e = &trackerEntry{}
		t.entries[key] = e
	}
	e.pruneLocked(now.Add(-t.cfg.Window))
	e.fails = append(e.fails, now)
	if len(e.fails) < t.cfg.Threshold {
		return false, time.Time{}
	}
	e.fails = nil
	e.benches++
	penalty := t.cfg.BasePenalty << (e.benches - 1)
	if penalty > t.cfg.MaxPenalty || penalty <= 0 { // <= 0: shift overflow
		penalty = t.cfg.MaxPenalty
	}
	e.benchedUntil = now.Add(penalty)
	return true, e.benchedUntil
}

// Benched reports whether key is currently benched and, if so, the
// remaining penalty.
func (t *Tracker) Benched(key string) (time.Duration, bool) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[key]
	if e == nil || !e.benchedUntil.After(now) {
		return 0, false
	}
	return e.benchedUntil.Sub(now), true
}

// Strikes returns key's failure count inside the current window (0 for
// unknown keys; a bench resets it).
func (t *Tracker) Strikes(key string) int {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[key]
	if e == nil {
		return 0
	}
	e.pruneLocked(now.Add(-t.cfg.Window))
	return len(e.fails)
}

// BenchedKeys lists the keys currently serving a bench, sorted.
func (t *Tracker) BenchedKeys() []string {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for k, e := range t.entries {
		if e.benchedUntil.After(now) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Forgive clears key's failure history and any active bench — for
// operator overrides and tests.
func (t *Tracker) Forgive(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.entries, key)
}

// Hook is an injectable fault point: code guarding a fallible operation
// calls Check before performing it, and tests or chaos controllers
// install a function that fails selected operations on demand. A nil
// *Hook and an empty Hook are both always-pass, so production call
// sites pay one atomic load. The op string names the guarded operation
// ("journal.append", "store.append"), letting one hook target a subset.
type Hook struct {
	fn atomic.Pointer[func(op string) error]
}

// Set installs the fault function (nil clears it).
func (h *Hook) Set(fn func(op string) error) {
	if h == nil {
		return
	}
	if fn == nil {
		h.fn.Store(nil)
		return
	}
	h.fn.Store(&fn)
}

// Clear removes any installed fault function.
func (h *Hook) Clear() { h.Set(nil) }

// Check consults the installed fault function; nil error means proceed.
func (h *Hook) Check(op string) error {
	if h == nil {
		return nil
	}
	fn := h.fn.Load()
	if fn == nil {
		return nil
	}
	return (*fn)(op)
}

// FileHook returns a hook that fails every checked operation while a
// file exists at path — the cross-process fault switch the chaos
// harness flips to simulate a full disk on a spawned daemon: touch the
// file to degrade, remove it to heal. The stat cost is paid only on
// guarded writes.
func FileHook(path string) *Hook {
	h := &Hook{}
	h.Set(func(op string) error {
		if _, err := os.Stat(path); err == nil {
			return fmt.Errorf("resilience: induced fault on %s (fault file %s exists)", op, path)
		}
		return nil
	})
	return h
}
