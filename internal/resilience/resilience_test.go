package resilience

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestDelayFullJitterBounds(t *testing.T) {
	p := Policy{Initial: 100 * time.Millisecond, Max: time.Second, Factor: 2}
	for attempt := 0; attempt < 20; attempt++ {
		ceil := 100 * time.Millisecond << attempt
		if ceil > time.Second || ceil <= 0 {
			ceil = time.Second
		}
		for i := 0; i < 50; i++ {
			d := p.Delay(attempt)
			if d < 0 || d >= ceil {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, ceil)
			}
		}
	}
}

func TestDelayDeterministicWithInjectedRand(t *testing.T) {
	p := Policy{Initial: 100 * time.Millisecond, Max: 10 * time.Second, Rand: func() float64 { return 0.5 }}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	// Ceiling saturates at Max.
	if got := p.Delay(40); got != 5*time.Second {
		t.Fatalf("Delay(40) = %v, want %v", got, 5*time.Second)
	}
}

// fastPolicy retries without wall-clock sleeps, recording requested delays.
func fastPolicy(maxAttempts int, delays *[]time.Duration) Policy {
	return Policy{
		Initial:     time.Millisecond,
		Max:         time.Second,
		MaxAttempts: maxAttempts,
		Sleep: func(ctx context.Context, d time.Duration) error {
			if delays != nil {
				*delays = append(*delays, d)
			}
			return ctx.Err()
		},
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	p := fastPolicy(0, nil)
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 4 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("err=%v calls=%d, want nil/4", err, calls)
	}
}

func TestDoMaxAttempts(t *testing.T) {
	p := fastPolicy(3, nil)
	calls := 0
	boom := errors.New("boom")
	err := p.Do(context.Background(), func(context.Context) error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err=%v calls=%d, want boom/3", err, calls)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	p := fastPolicy(0, nil)
	calls := 0
	boom := errors.New("bad request")
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(fmt.Errorf("wrapped: %w", boom))
	})
	if calls != 1 {
		t.Fatalf("calls=%d, want 1", calls)
	}
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err=%v, want wrapped boom", err)
	}
}

func TestDoContextCancelStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Initial: time.Millisecond, Sleep: func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}}
	boom := errors.New("transient")
	err := p.Do(ctx, func(context.Context) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want the attempt error back", err)
	}
}

type hintedErr struct{ after time.Duration }

func (e hintedErr) Error() string                 { return "throttled" }
func (e hintedErr) RetryAfterHint() time.Duration { return e.after }

func TestDoHonorsRetryAfterHint(t *testing.T) {
	var delays []time.Duration
	p := fastPolicy(3, &delays)
	calls := 0
	_ = p.Do(context.Background(), func(context.Context) error {
		calls++
		return fmt.Errorf("submit: %w", hintedErr{after: 7 * time.Second})
	})
	if calls != 3 {
		t.Fatalf("calls=%d, want 3", calls)
	}
	for i, d := range delays {
		if d != 7*time.Second {
			t.Fatalf("delay[%d]=%v, want the 7s server hint", i, d)
		}
	}
}

func TestDoAttemptTimeout(t *testing.T) {
	p := Policy{MaxAttempts: 2, AttemptTimeout: 10 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error { return nil }}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) || calls != 2 {
		t.Fatalf("err=%v calls=%d, want deadline/2", err, calls)
	}
}

func TestTrackerBenchAndExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	tr := NewTracker(TrackerConfig{
		Threshold:   3,
		Window:      time.Minute,
		BasePenalty: 10 * time.Second,
		MaxPenalty:  40 * time.Second,
		Now:         func() time.Time { return now },
	})

	for i := 0; i < 2; i++ {
		if benched, _ := tr.Fail("w1"); benched {
			t.Fatalf("benched after %d strikes", i+1)
		}
	}
	if got := tr.Strikes("w1"); got != 2 {
		t.Fatalf("strikes=%d, want 2", got)
	}
	benched, until := tr.Fail("w1")
	if !benched || until != now.Add(10*time.Second) {
		t.Fatalf("third strike: benched=%v until=%v", benched, until)
	}
	if rem, ok := tr.Benched("w1"); !ok || rem != 10*time.Second {
		t.Fatalf("Benched = %v,%v", rem, ok)
	}
	if keys := tr.BenchedKeys(); len(keys) != 1 || keys[0] != "w1" {
		t.Fatalf("BenchedKeys = %v", keys)
	}
	// Bench expires with time; an unrelated key is untouched.
	now = now.Add(11 * time.Second)
	if _, ok := tr.Benched("w1"); ok {
		t.Fatal("still benched past expiry")
	}
	if _, ok := tr.Benched("w2"); ok {
		t.Fatal("unknown key benched")
	}

	// Second offence doubles the penalty; the cap bounds growth.
	for i := 0; i < 3; i++ {
		benched, until = tr.Fail("w1")
	}
	if !benched || until != now.Add(20*time.Second) {
		t.Fatalf("second bench until=%v, want +20s", until)
	}
	now = now.Add(21 * time.Second)
	for i := 0; i < 3; i++ {
		benched, until = tr.Fail("w1")
	}
	if !benched || until != now.Add(40*time.Second) {
		t.Fatalf("third bench until=%v, want +40s (capped)", until)
	}
	now = now.Add(41 * time.Second)
	for i := 0; i < 3; i++ {
		benched, until = tr.Fail("w1")
	}
	if !benched || until != now.Add(40*time.Second) {
		t.Fatalf("fourth bench until=%v, want cap to hold", until)
	}
}

func TestTrackerWindowSlides(t *testing.T) {
	now := time.Unix(1000, 0)
	tr := NewTracker(TrackerConfig{Threshold: 3, Window: 10 * time.Second,
		Now: func() time.Time { return now }})
	tr.Fail("w")
	tr.Fail("w")
	now = now.Add(11 * time.Second) // both strikes age out
	if benched, _ := tr.Fail("w"); benched {
		t.Fatal("benched on stale strikes")
	}
	if got := tr.Strikes("w"); got != 1 {
		t.Fatalf("strikes=%d, want 1", got)
	}
}

func TestTrackerForgive(t *testing.T) {
	tr := NewTracker(TrackerConfig{Threshold: 1, BasePenalty: time.Hour})
	tr.Fail("w")
	if _, ok := tr.Benched("w"); !ok {
		t.Fatal("not benched")
	}
	tr.Forgive("w")
	if _, ok := tr.Benched("w"); ok {
		t.Fatal("forgiveness didn't clear the bench")
	}
}

func TestHookNilAndSet(t *testing.T) {
	var nilHook *Hook
	if err := nilHook.Check("x"); err != nil {
		t.Fatalf("nil hook: %v", err)
	}
	nilHook.Set(func(string) error { return errors.New("no-op on nil") })

	h := &Hook{}
	if err := h.Check("x"); err != nil {
		t.Fatalf("empty hook: %v", err)
	}
	boom := errors.New("boom")
	h.Set(func(op string) error {
		if op == "journal.append" {
			return boom
		}
		return nil
	})
	if err := h.Check("journal.append"); !errors.Is(err, boom) {
		t.Fatalf("targeted op: %v", err)
	}
	if err := h.Check("store.append"); err != nil {
		t.Fatalf("untargeted op: %v", err)
	}
	h.Clear()
	if err := h.Check("journal.append"); err != nil {
		t.Fatalf("cleared hook: %v", err)
	}
}

func TestFileHook(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fault")
	h := FileHook(path)
	if err := h.Check("w"); err != nil {
		t.Fatalf("no fault file: %v", err)
	}
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := h.Check("w"); err == nil {
		t.Fatal("fault file present but check passed")
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := h.Check("w"); err != nil {
		t.Fatalf("fault file removed: %v", err)
	}
}
