// Package loadgen replays synthetic multi-tenant traffic against a
// running fedvald daemon and measures what the microbenchmarks cannot:
// throughput, queue wait and job latency percentiles under thousands of
// concurrent submissions spread over many problem fingerprints, with SSE
// watcher pools and warm resubmits exercising the event hub and the
// persistent utility store. Its chaos controller (see chaos.go) injects
// worker kills, daemon SIGKILLs and coordinator partitions mid-load and
// then asserts the journal/requeue invariants the service is built on.
//
// The package is the engine behind cmd/fedvalload; tests drive it against
// in-process daemons with synthetic games.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fedshap"
)

// Mix shapes the synthetic traffic: the problem vocabulary requests are
// drawn from. Every generated request is valid for a stock fedvald.
type Mix struct {
	// Data/Scale/N fix the dataset family, substrate scale and federation
	// size (defaults: synthetic / tiny / 4).
	Data  string
	Scale string
	N     int
	// Models are cycled across fingerprints (default [logreg]). The model
	// participates in the problem fingerprint, so mixing models widens
	// the fingerprint space.
	Models []string
	// Gammas are sampled per submission (default [6, 12]). γ is a sampler
	// property, not a problem property: two jobs with different budgets
	// share one fingerprint and warm each other through the store.
	Gammas []int
	// Algorithm names the valuer (default ipss).
	Algorithm string
}

// Config tunes a load run.
type Config struct {
	// Client talks to the target daemon.
	Client *fedshap.ServiceClient
	// Jobs is the total number of submissions to replay (default 50).
	Jobs int
	// Concurrency is the number of concurrent submitters (default 4).
	Concurrency int
	// BatchSize groups submissions into POST /v1/jobs:batch calls;
	// <= 1 submits one job per request (default 1).
	BatchSize int
	// Fingerprints is the number of distinct problem fingerprints the
	// traffic spreads across (default 4): fingerprint j varies the seed
	// (and cycles Mix.Models), so each is an independent cached problem.
	Fingerprints int
	// WarmFraction is the probability a submission repeats an earlier
	// request verbatim instead of drawing a fresh one — the resubmit
	// traffic that exercises the persistent store (default 0.25).
	WarmFraction float64
	// Watchers sizes the SSE watcher pool (default 2; 0 disables). Each
	// watcher holds a live event stream on one submitted job until it
	// terminates, falling back to polling if the stream breaks for good.
	Watchers int
	// Seed drives traffic generation; runs with equal seeds submit
	// identical request sequences (default 1).
	Seed int64
	// Timeout bounds the whole run (default 10 minutes).
	Timeout time.Duration
	// ScrapeInterval is the /metrics sampling cadence (default 500ms).
	ScrapeInterval time.Duration
	// Mix shapes the request vocabulary.
	Mix Mix
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.Jobs <= 0 {
		c.Jobs = 50
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.Fingerprints <= 0 {
		c.Fingerprints = 4
	}
	if c.WarmFraction < 0 {
		c.WarmFraction = 0
	}
	if c.Watchers < 0 {
		c.Watchers = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Minute
	}
	if c.ScrapeInterval <= 0 {
		c.ScrapeInterval = 500 * time.Millisecond
	}
	if c.Mix.Data == "" {
		c.Mix.Data = "synthetic"
	}
	if c.Mix.Scale == "" {
		c.Mix.Scale = "tiny"
	}
	if c.Mix.N <= 0 {
		c.Mix.N = 4
	}
	if len(c.Mix.Models) == 0 {
		c.Mix.Models = []string{"logreg"}
	}
	if len(c.Mix.Gammas) == 0 {
		c.Mix.Gammas = []int{6, 12}
	}
	if c.Mix.Algorithm == "" {
		c.Mix.Algorithm = "ipss"
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Runner executes one load run. Create with NewRunner; Run may be called
// once.
type Runner struct {
	cfg Config

	requests []fedshap.JobRequest
	warm     int // how many of requests are verbatim resubmits

	mu        sync.Mutex
	submitted []*fedshap.JobStatus
	submitLat []time.Duration
	finals    map[string]*fedshap.JobStatus

	terminalCount atomic.Int64
	watchEvents   atomic.Int64
	watchResumes  atomic.Int64
	watchJobs     atomic.Int64
	rejected429s  atomic.Int64

	scraper *metricsScraper
}

// NewRunner validates the config and pre-generates the deterministic
// request sequence.
func NewRunner(cfg Config) (*Runner, error) {
	cfg.defaults()
	if cfg.Client == nil {
		return nil, errors.New("loadgen: Config.Client is required")
	}
	// The harness measures raw server behaviour: its own submit loop owns
	// backoff and counts every 429, so the client's transparent retry
	// policy would hide exactly the rejections a load report exists to
	// surface.
	cfg.Client.Retry = nil
	r := &Runner{cfg: cfg, finals: make(map[string]*fedshap.JobStatus)}
	r.scraper = newMetricsScraper(cfg.Client, cfg.ScrapeInterval)
	r.requests, r.warm = generate(cfg)
	return r, nil
}

// ScrapeNow samples /metrics immediately through the run's accumulating
// scraper — the chaos controller calls it right before a kill so the
// victim's in-flight state (and the current daemon life's counters) are
// captured before they vanish.
func (r *Runner) ScrapeNow(ctx context.Context) *fedshap.Metrics {
	return r.scraper.Scrape(ctx)
}

// DeathRequeues reports the cumulative worker-death requeue count
// observed across every daemon life of the run.
func (r *Runner) DeathRequeues() int64 { return r.scraper.deathRequeues() }

// DeadlineRequeues reports the cumulative task-deadline requeue count
// observed across every daemon life of the run.
func (r *Runner) DeadlineRequeues() int64 { return r.scraper.deadlineRequeues() }

// QuarantineRejections reports the cumulative flap-quarantine attach
// rejections observed across every daemon life of the run.
func (r *Runner) QuarantineRejections() int64 { return r.scraper.quarantineRejections() }

// Rejected429s reports how many submissions were shed with HTTP 429
// before eventually being accepted.
func (r *Runner) Rejected429s() int64 { return r.rejected429s.Load() }

// Requests exposes the generated submission sequence (for tests and for
// the chaos controller's replay/control passes).
func (r *Runner) Requests() []fedshap.JobRequest { return r.requests }

// UniqueRequests returns the distinct requests of the sequence, in first-
// appearance order — the set the chaos invariants replay and control-run.
func (r *Runner) UniqueRequests() []fedshap.JobRequest {
	seen := make(map[string]bool)
	var out []fedshap.JobRequest
	for _, req := range r.requests {
		k := requestKey(req)
		if !seen[k] {
			seen[k] = true
			out = append(out, req)
		}
	}
	return out
}

// TerminalCount reports how many tracked jobs have reached a terminal
// state so far — the chaos controller paces its faults on it.
func (r *Runner) TerminalCount() int { return int(r.terminalCount.Load()) }

// FinalStatuses returns the terminal status of every tracked job, keyed
// by job ID. Valid after Run returns.
func (r *Runner) FinalStatuses() map[string]*fedshap.JobStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*fedshap.JobStatus, len(r.finals))
	for id, st := range r.finals {
		out[id] = st
	}
	return out
}

// generate builds the deterministic request sequence: Fingerprints
// problem variants (seed + model rotation), γ drawn per submission, and a
// WarmFraction of verbatim resubmits of earlier requests.
func generate(cfg Config) (reqs []fedshap.JobRequest, warm int) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	variants := make([]fedshap.JobRequest, cfg.Fingerprints)
	for j := range variants {
		variants[j] = fedshap.JobRequest{
			Data:      cfg.Mix.Data,
			Scale:     cfg.Mix.Scale,
			N:         cfg.Mix.N,
			Model:     cfg.Mix.Models[j%len(cfg.Mix.Models)],
			Algorithm: cfg.Mix.Algorithm,
			Seed:      cfg.Seed + int64(j),
		}
	}
	reqs = make([]fedshap.JobRequest, 0, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		if len(reqs) > 0 && rng.Float64() < cfg.WarmFraction {
			reqs = append(reqs, reqs[rng.Intn(len(reqs))])
			warm++
			continue
		}
		req := variants[rng.Intn(len(variants))]
		req.Gamma = cfg.Mix.Gammas[rng.Intn(len(cfg.Mix.Gammas))]
		reqs = append(reqs, req)
	}
	return reqs, warm
}

// requestKey canonicalises a request for dedup (the wire form is already
// normalized enough for the requests generate produces).
func requestKey(req fedshap.JobRequest) string {
	return fmt.Sprintf("%s|%s|%s|%g|%s|%d|%d|%d|%d|%s",
		req.Data, req.Setup, req.Model, req.Noise, req.Algorithm, req.N, req.Gamma, req.K, req.Seed, req.Scale)
}

// Run replays the traffic and blocks until every accepted job reaches a
// terminal state (or the run times out). It is tolerant of a daemon that
// goes away mid-run — submissions and polls retry with backoff — which is
// what lets the chaos controller SIGKILL and relaunch the daemon under
// load.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.Timeout)
	defer cancel()

	//fedvallint:allow(ctxthread) the scraper deliberately outlives the run ctx so the final fold over /metrics still happens after a timeout
	scrapeCtx, stopScraper := context.WithCancel(context.Background())
	defer stopScraper()
	go r.scraper.run(scrapeCtx)

	start := time.Now()
	watchQueue := make(chan string, r.cfg.Jobs)
	var watchers sync.WaitGroup
	for w := 0; w < r.cfg.Watchers; w++ {
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			for id := range watchQueue {
				r.watchOne(ctx, id)
			}
		}()
	}

	if err := r.submitAll(ctx, watchQueue); err != nil {
		close(watchQueue)
		watchers.Wait()
		return nil, err
	}
	err := r.awaitTerminal(ctx)
	close(watchQueue)
	watchers.Wait()
	wall := time.Since(start)
	stopScraper()

	rep := r.assemble(wall)
	return rep, err
}

// submitAll drives the submitter pool over the request sequence.
func (r *Runner) submitAll(ctx context.Context, watchQueue chan<- string) error {
	batches := make(chan []fedshap.JobRequest)
	var wg sync.WaitGroup
	errc := make(chan error, r.cfg.Concurrency)
	for w := 0; w < r.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for batch := range batches {
				if err := r.submitBatch(ctx, batch, watchQueue); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < len(r.requests); i += r.cfg.BatchSize {
		end := i + r.cfg.BatchSize
		if end > len(r.requests) {
			end = len(r.requests)
		}
		select {
		case batches <- r.requests[i:end]:
		case <-ctx.Done():
			close(batches)
			wg.Wait()
			return ctx.Err()
		}
	}
	close(batches)
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// submitBatch submits one batch (or single job), retrying queue-full
// rejections and connection errors — a daemon mid-restart refuses
// connections for a moment and a saturated queue sheds load; both are
// expected under stress, so the generator backs off and persists. A 429
// carrying a Retry-After hint overrides the computed backoff: the server
// knows its own drain rate better than the client's doubling schedule.
func (r *Runner) submitBatch(ctx context.Context, batch []fedshap.JobRequest, watchQueue chan<- string) error {
	pending := batch
	backoff := 25 * time.Millisecond
	for len(pending) > 0 {
		reqStart := time.Now()
		accepted, rejected, retryAfter, err := r.trySubmit(ctx, pending)
		lat := time.Since(reqStart)
		if err == nil {
			r.record(accepted, lat, watchQueue)
			if len(rejected) == 0 {
				return nil
			}
			pending = rejected
		} else if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		} else {
			var se *fedshap.ServiceError
			if errors.As(err, &se) && se.StatusCode < 500 && se.StatusCode != 429 {
				return fmt.Errorf("loadgen: submission rejected: %w", err)
			}
			// Connection refused / 5xx: the daemon is restarting or
			// saturated. Fall through to back off and retry.
		}
		wait := backoff
		if retryAfter > wait {
			wait = retryAfter
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
		if backoff < 400*time.Millisecond {
			backoff *= 2
		}
	}
	return nil
}

// trySubmit performs one submission round trip, splitting per-item
// outcomes: accepted statuses, queue-full rejections to retry (with the
// server's Retry-After hint when it sent one), or a transport/whole-batch
// error.
func (r *Runner) trySubmit(ctx context.Context, pending []fedshap.JobRequest) (accepted []*fedshap.JobStatus, rejected []fedshap.JobRequest, retryAfter time.Duration, err error) {
	if len(pending) == 1 && r.cfg.BatchSize <= 1 {
		st, err := r.cfg.Client.Submit(ctx, pending[0])
		if err != nil {
			var se *fedshap.ServiceError
			if errors.As(err, &se) {
				switch se.StatusCode {
				case 429: // queue saturated: admission control shed us
					r.rejected429s.Add(1)
					return nil, pending, se.RetryAfter, nil
				case 503: // older daemons shed queue-full as 503
					return nil, pending, 0, nil
				}
			}
			return nil, nil, 0, err
		}
		return []*fedshap.JobStatus{st}, nil, 0, nil
	}
	resp, err := r.cfg.Client.SubmitBatch(ctx, pending)
	if err != nil {
		var se *fedshap.ServiceError
		if errors.As(err, &se) && se.StatusCode == 429 {
			r.rejected429s.Add(int64(len(pending)))
			return nil, pending, se.RetryAfter, nil
		}
		return nil, nil, 0, err
	}
	for i, item := range resp.Jobs {
		if item.Status != nil {
			accepted = append(accepted, item.Status)
		} else {
			// Every generated request is valid; a rejection here is the
			// queue shedding load. Retry it.
			rejected = append(rejected, pending[i])
		}
	}
	return accepted, rejected, 0, nil
}

// record registers accepted submissions and feeds the watcher pool.
func (r *Runner) record(accepted []*fedshap.JobStatus, lat time.Duration, watchQueue chan<- string) {
	r.mu.Lock()
	for _, st := range accepted {
		r.submitted = append(r.submitted, st)
		r.submitLat = append(r.submitLat, lat)
	}
	r.mu.Unlock()
	for _, st := range accepted {
		select {
		case watchQueue <- st.ID:
		default: // watcher pool saturated: this job is polled, not watched
		}
	}
}

// watchOne holds an SSE stream on a job until it terminates; if the
// stream breaks permanently (daemon SIGKILL), it falls back to tolerant
// polling so the watcher still observes the terminal state.
func (r *Runner) watchOne(ctx context.Context, id string) {
	st, err := r.cfg.Client.WatchJob(ctx, id, func(event string, st *fedshap.JobStatus) {
		r.watchEvents.Add(1)
	})
	if err != nil && ctx.Err() == nil {
		r.watchResumes.Add(1)
		st = r.pollTerminal(ctx, id)
	}
	if st != nil && st.State.Terminal() {
		r.watchJobs.Add(1)
	}
}

// pollTerminal polls one job until terminal, riding out daemon downtime.
func (r *Runner) pollTerminal(ctx context.Context, id string) *fedshap.JobStatus {
	for {
		st, err := r.cfg.Client.Job(ctx, id)
		if err == nil && st.State.Terminal() {
			return st
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// awaitTerminal polls the job list until every tracked submission is
// terminal, recording final statuses. List polling (rather than per-job
// gets) keeps the poll cost flat in the number of jobs; transport errors
// are daemon restarts and are ridden out.
func (r *Runner) awaitTerminal(ctx context.Context) error {
	for {
		r.mu.Lock()
		ids := make([]string, 0, len(r.submitted))
		for _, st := range r.submitted {
			if _, done := r.finals[st.ID]; !done {
				ids = append(ids, st.ID)
			}
		}
		total := len(r.submitted)
		r.mu.Unlock()
		if len(ids) == 0 && total > 0 {
			return nil
		}
		jobs, err := r.cfg.Client.Jobs(ctx)
		if err == nil {
			byID := make(map[string]*fedshap.JobStatus, len(jobs))
			for _, st := range jobs {
				byID[st.ID] = st
			}
			r.mu.Lock()
			for _, id := range ids {
				if st, ok := byID[id]; ok && st.State.Terminal() {
					r.finals[id] = st
					r.terminalCount.Add(1)
				}
			}
			remaining := total - len(r.finals)
			r.mu.Unlock()
			if remaining == 0 {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("loadgen: %w before all jobs terminal", ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// assemble builds the report from the collected samples.
func (r *Runner) assemble(wall time.Duration) *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		Jobs:          len(r.requests),
		Submitted:     len(r.submitted),
		Fingerprints:  r.cfg.Fingerprints,
		WarmResubmits: r.warm,
		WallSeconds:   wall.Seconds(),
		SubmitLatency: percentilesOf(r.submitLat),
		Watchers: WatcherStats{
			Jobs:    int(r.watchJobs.Load()),
			Events:  r.watchEvents.Load(),
			Resumes: r.watchResumes.Load(),
		},
	}
	rep.Rejected429s = r.rejected429s.Load()
	var queueWait, jobLat []time.Duration
	for _, st := range r.finals {
		switch st.State {
		case fedshap.JobDone:
			rep.Done++
		case fedshap.JobFailed:
			rep.Failed++
		case fedshap.JobCancelled:
			rep.Cancelled++
		case fedshap.JobTimedOut:
			rep.TimedOut++
		}
		rep.FreshEvals += int64(st.FreshEvals)
		rep.WarmedCoalitions += int64(st.WarmedCoalitions)
		if st.StartedAt != nil {
			queueWait = append(queueWait, st.StartedAt.Sub(st.SubmittedAt))
		}
		if st.FinishedAt != nil {
			jobLat = append(jobLat, st.FinishedAt.Sub(st.SubmittedAt))
		}
	}
	rep.QueueWait = percentilesOf(queueWait)
	rep.JobLatency = percentilesOf(jobLat)
	if wall > 0 {
		rep.Throughput = float64(rep.Done+rep.Failed+rep.Cancelled) / wall.Seconds()
	}
	if r.scraper != nil {
		rep.Metrics = r.scraper.last()
	}
	return rep
}

// metricsScraper samples GET /metrics on an interval, accumulating
// counters that reset when the daemon process is replaced — a SIGKILLed
// and relaunched daemon starts its fleet counters at zero, so the scraper
// detects the reset (counter went backwards) and carries the previous
// life's total forward. This is what lets a chaos run assert that
// fedvald_fleet_redispatch_total accounted for every induced death even
// though the daemon died in the middle.
type metricsScraper struct {
	client   *fedshap.ServiceClient
	interval time.Duration

	mu           sync.Mutex
	snapshot     *fedshap.Metrics
	requeueBase  int64 // sum of completed lives' worker-death requeues
	requeueSeen  int64 // current life's latest value
	redispBase   int64
	redispSeen   int64
	deadlineBase int64
	deadlineSeen int64
	qrejBase     int64
	qrejSeen     int64
	scrapeErrors int64
}

func newMetricsScraper(client *fedshap.ServiceClient, interval time.Duration) *metricsScraper {
	return &metricsScraper{client: client, interval: interval}
}

func (s *metricsScraper) run(ctx context.Context) {
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		s.Scrape(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// Scrape samples /metrics once, immediately. The chaos controller calls
// it right before a kill so the victim's in-flight state is fresh.
func (s *metricsScraper) Scrape(ctx context.Context) *fedshap.Metrics {
	sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	m, err := s.client.Metrics(sctx)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.scrapeErrors++
		return s.snapshot
	}
	s.snapshot = m
	if m.Fleet != nil {
		if m.Fleet.Requeues < s.requeueSeen { // counter reset: new daemon life
			s.requeueBase += s.requeueSeen
		}
		s.requeueSeen = m.Fleet.Requeues
		if m.Fleet.Redispatches < s.redispSeen {
			s.redispBase += s.redispSeen
		}
		s.redispSeen = m.Fleet.Redispatches
		if m.Fleet.DeadlineRequeues < s.deadlineSeen {
			s.deadlineBase += s.deadlineSeen
		}
		s.deadlineSeen = m.Fleet.DeadlineRequeues
		if m.Fleet.QuarantineRejections < s.qrejSeen {
			s.qrejBase += s.qrejSeen
		}
		s.qrejSeen = m.Fleet.QuarantineRejections
	}
	return m
}

// last returns the most recent successful snapshot.
func (s *metricsScraper) last() *fedshap.Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshot
}

// deathRequeues returns the cumulative worker-death requeue count across
// every daemon life observed.
func (s *metricsScraper) deathRequeues() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requeueBase + s.requeueSeen
}

// deadlineRequeues returns the cumulative task-deadline requeue count
// across every daemon life observed.
func (s *metricsScraper) deadlineRequeues() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deadlineBase + s.deadlineSeen
}

// quarantineRejections returns the cumulative flap-quarantine attach
// rejection count across every daemon life observed.
func (s *metricsScraper) quarantineRejections() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.qrejBase + s.qrejSeen
}
