package loadgen

import (
	"context"
	"fmt"
	"math"
	"os"
	"os/exec"
	"syscall"
	"time"

	"fedshap"
)

// ProcessSpec is the seam between the chaos controller and the operating
// system: how to (re)launch the processes it kills. cmd/fedvalload wires
// these to the real fedvald/fedvalworker binaries; the tests wire them to
// the re-exec'd test binary. Every function must return an already
// started command.
type ProcessSpec struct {
	// StartDaemon (re)launches the chaos-target daemon on its fixed API
	// and worker-listener addresses, over the same journal and cache
	// directory as the previous life — that reuse is the whole point: the
	// relaunched daemon must recover the journal and warm the store.
	StartDaemon func() (*exec.Cmd, error)
	// StartWorker (re)launches the named fleet worker, dialing the
	// coordinator through the chaos proxy so partitions can sever it.
	StartWorker func(name string) (*exec.Cmd, error)
	// StartControl launches the independent control daemon — fresh
	// journal, fresh cache, no faults — used for the bit-identical
	// invariant. Nil skips that invariant.
	StartControl func() (*exec.Cmd, error)
}

// ChaosConfig shapes a chaos run around a load Runner.
type ChaosConfig struct {
	// Spec launches processes; Client talks to the chaos daemon (same
	// client the Runner uses).
	Spec   ProcessSpec
	Client *fedshap.ServiceClient
	// WorkerNames is the fleet roster; each name is kept alive (killed
	// workers are relaunched under the same name).
	WorkerNames []string
	// Proxy, when set, sits between the workers and the coordinator and
	// powers partition faults. Required if Partitions > 0.
	Proxy *Proxy
	// DaemonKills / WorkerKills / Partitions are the fault quotas,
	// interleaved round-robin across the run.
	DaemonKills int
	WorkerKills int
	Partitions  int
	// DiskFull / Stalls / Flaps are the resilience fault quotas. A
	// disk-full fault creates FaultFile (failing every daemon persistence
	// write — the daemon must be launched watching that path), submits a
	// canary job inside the degraded window, then removes the file and
	// waits for recovery. A stall SIGSTOPs a fleet worker past the
	// coordinator's task deadline, then SIGCONTs it. A flap kills the same
	// worker name FlapKillCount times in quick succession to trip the
	// coordinator's quarantine, then verifies the bench refuses a relaunch
	// before letting it reattach.
	DiskFull int
	Stalls   int
	Flaps    int
	// FaultFile is the persistence fault-switch path shared with the
	// daemon (required when DiskFull > 0).
	FaultFile string
	// StallFor is how long a stalled worker stays SIGSTOPped; it must
	// exceed the daemon's task deadline (default 3s).
	StallFor time.Duration
	// FlapKillCount is the kills per flap fault; it must reach the
	// coordinator's flap threshold (default 3, matching the coordinator
	// default).
	FlapKillCount int
	// ControlClient talks to the control daemon (required when
	// Spec.StartControl is set).
	ControlClient *fedshap.ServiceClient
	// SettleTimeout bounds each wait for the system to become healthy
	// again after a fault (default 60s).
	SettleTimeout time.Duration
	// Logf receives fault-by-fault progress; nil discards it.
	Logf func(format string, args ...any)
}

func (c *ChaosConfig) defaults() {
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 60 * time.Second
	}
	if c.StallFor <= 0 {
		c.StallFor = 3 * time.Second
	}
	if c.FlapKillCount <= 0 {
		c.FlapKillCount = 3
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// controller tracks the live process handles across kills.
type controller struct {
	cfg     ChaosConfig
	runner  *Runner
	daemon  *exec.Cmd
	workers map[string]*exec.Cmd
	control *exec.Cmd
	// canaries holds one pending result per disk-full fault: the job
	// submitted inside the degraded window. They queue behind the live
	// load, so their verdicts are collected at invariant time, not
	// inline (blocking the fault sequence on a full queue would let the
	// load drain and leave the later faults with an idle fleet).
	canaries []<-chan *fedshap.JobStatus
}

// RunChaos launches the daemon and fleet, drives the Runner's load
// against them while injecting the configured faults, and then checks the
// four recovery invariants the service promises:
//
//   - all-terminal: every accepted submission reached a terminal state
//     (and none failed) despite the kills;
//   - replay-zero-fresh: resubmitting each distinct request afterwards
//     costs zero fresh evaluations — the store retained every coalition
//     across daemon deaths;
//   - control-bit-identical: the recovered reports match an undisturbed
//     control daemon's reports bit for bit;
//   - redispatch-accounting: the fleet's worker-death requeue counter,
//     accumulated across daemon lives, accounts for every induced death
//     that verifiably had work in flight.
//
// Resilience fault quotas add their own invariants: deadline-enforced
// (every stall with verified in-flight work produced a task-deadline
// requeue), quarantine-accounting (every flap victim was benched and the
// bench refused a reattach), and degraded-mode-recovery (every disk-full
// flipped the daemon to memory-only operation, restored persistence
// afterwards, and the canary job admitted inside the degraded window
// reached done).
//
// The report's Chaos section records faults and verdicts; RunChaos only
// returns a non-nil error for harness failures (a violated invariant is
// data, not an error — callers decide via Report.Chaos.Violations()).
func RunChaos(ctx context.Context, r *Runner, cfg ChaosConfig) (*Report, error) {
	cfg.defaults()
	if cfg.Spec.StartDaemon == nil || cfg.Spec.StartWorker == nil {
		return nil, fmt.Errorf("loadgen: chaos needs Spec.StartDaemon and Spec.StartWorker")
	}
	if cfg.Partitions > 0 && cfg.Proxy == nil {
		return nil, fmt.Errorf("loadgen: partitions need a Proxy")
	}
	if cfg.DiskFull > 0 && cfg.FaultFile == "" {
		return nil, fmt.Errorf("loadgen: disk-full faults need a FaultFile shared with the daemon")
	}
	if (cfg.Stalls > 0 || cfg.Flaps > 0) && len(cfg.WorkerNames) == 0 {
		return nil, fmt.Errorf("loadgen: stall and flap faults target the worker fleet")
	}
	ctrl := &controller{cfg: cfg, runner: r, workers: make(map[string]*exec.Cmd)}
	defer ctrl.stopAll()

	if err := ctrl.startAll(ctx); err != nil {
		return nil, err
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var runRep *Report
	var runErr error
	done := make(chan struct{})
	go func() {
		runRep, runErr = r.Run(runCtx)
		close(done)
	}()

	chaos := &ChaosReport{}
	if err := ctrl.injectFaults(ctx, chaos, done); err != nil {
		cancelRun()
		<-done
		return nil, err
	}

	<-done
	if runRep == nil {
		// The run failed before producing a report (harness-level failure,
		// e.g. the submission pool hit a hard rejection).
		return nil, runErr
	}
	// A timeout before quiescence still yields a report; the all-terminal
	// invariant records the violation.
	rep := runRep
	rep.Chaos = chaos
	chaos.ObservedDeathRequeues = r.DeathRequeues()
	chaos.ObservedDeadlineRequeues = r.DeadlineRequeues()
	chaos.ObservedQuarantineRejections = r.QuarantineRejections()

	ctrl.checkAllTerminal(rep)
	ctrl.checkRedispatchAccounting(chaos)
	if cfg.Stalls > 0 {
		ctrl.checkDeadlineEnforced(chaos)
	}
	if cfg.Flaps > 0 {
		ctrl.checkQuarantineAccounting(chaos)
	}
	if cfg.DiskFull > 0 {
		ctrl.checkDegradedRecovery(ctx, chaos)
	}
	replayed := ctrl.checkReplayZeroFresh(ctx, r, chaos)
	ctrl.checkControlBitIdentical(ctx, r, chaos, replayed)
	return rep, nil
}

// startAll launches the daemon and the full worker roster and waits for
// the fleet to attach.
func (c *controller) startAll(ctx context.Context) error {
	d, err := c.cfg.Spec.StartDaemon()
	if err != nil {
		return fmt.Errorf("loadgen: start daemon: %w", err)
	}
	c.daemon = d
	if err := c.waitHealthy(ctx); err != nil {
		return err
	}
	for _, name := range c.cfg.WorkerNames {
		w, err := c.cfg.Spec.StartWorker(name)
		if err != nil {
			return fmt.Errorf("loadgen: start worker %s: %w", name, err)
		}
		c.workers[name] = w
	}
	return c.waitFleet(ctx, len(c.cfg.WorkerNames))
}

// injectFaults fires the configured faults round-robin, each gated on a
// terminal-count milestone so they land while load is genuinely in
// flight. If the run finishes early the remaining faults fire back to
// back (they still exercise recovery — the replay/control passes come
// after).
func (c *controller) injectFaults(ctx context.Context, chaos *ChaosReport, done <-chan struct{}) error {
	seq := faultSequence(c.cfg.WorkerKills, c.cfg.Partitions, c.cfg.DaemonKills,
		c.cfg.DiskFull, c.cfg.Stalls, c.cfg.Flaps)
	total := len(c.runner.Requests())
	finished := false
	for i, fault := range seq {
		milestone := total * (i + 1) / (len(seq) + 2)
		for !finished && c.runner.TerminalCount() < milestone {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-done:
				finished = true
			case <-time.After(50 * time.Millisecond):
			}
		}
		var err error
		switch fault {
		case "worker":
			err = c.killWorker(ctx, chaos)
		case "partition":
			err = c.partition(ctx, chaos)
		case "daemon":
			err = c.killDaemon(ctx, chaos)
		case "diskfull":
			err = c.diskFull(ctx, chaos)
		case "stall":
			err = c.stallWorker(ctx, chaos)
		case "flap":
			err = c.flapWorker(ctx, chaos)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// faultSequence interleaves the quotas round-robin: worker kill,
// partition, daemon kill, disk-full, stall, flap, worker kill, ...
func faultSequence(workers, partitions, daemons, diskfulls, stalls, flaps int) []string {
	var seq []string
	for workers+partitions+daemons+diskfulls+stalls+flaps > 0 {
		if workers > 0 {
			seq = append(seq, "worker")
			workers--
		}
		if partitions > 0 {
			seq = append(seq, "partition")
			partitions--
		}
		if daemons > 0 {
			seq = append(seq, "daemon")
			daemons--
		}
		if diskfulls > 0 {
			seq = append(seq, "diskfull")
			diskfulls--
		}
		if stalls > 0 {
			seq = append(seq, "stall")
			stalls--
		}
		if flaps > 0 {
			seq = append(seq, "flap")
			flaps--
		}
	}
	return seq
}

// killWorker SIGKILLs one fleet worker — preferring one with verified
// in-flight work — and relaunches it under the same name.
func (c *controller) killWorker(ctx context.Context, chaos *ChaosReport) error {
	m := c.scrape(ctx)
	victim := c.cfg.WorkerNames[chaos.WorkerKills%len(c.cfg.WorkerNames)]
	inflight := false
	if m != nil && m.Fleet != nil {
		for _, w := range m.Fleet.Workers {
			if w.InFlight > 0 {
				victim, inflight = w.Name, true
				break
			}
		}
	}
	proc, ok := c.workers[victim]
	if !ok {
		return fmt.Errorf("loadgen: no process handle for worker %s", victim)
	}
	c.cfg.Logf("chaos: SIGKILL worker %s (in-flight verified: %v)", victim, inflight)
	proc.Process.Kill()
	proc.Wait()
	chaos.WorkerKills++
	if inflight {
		chaos.KillsWithInflight++
	}
	w, err := c.cfg.Spec.StartWorker(victim)
	if err != nil {
		return fmt.Errorf("loadgen: relaunch worker %s: %w", victim, err)
	}
	c.workers[victim] = w
	return c.waitFleet(ctx, len(c.cfg.WorkerNames))
}

// partition severs every worker⇄coordinator connection at once. The
// workers' retry loops heal it; the coordinator must requeue whatever the
// severed workers had in flight.
func (c *controller) partition(ctx context.Context, chaos *ChaosReport) error {
	m := c.scrape(ctx)
	inflight := false
	if m != nil && m.Fleet != nil {
		for _, w := range m.Fleet.Workers {
			if w.InFlight > 0 {
				inflight = true
				break
			}
		}
	}
	n := c.cfg.Proxy.SeverAll()
	c.cfg.Logf("chaos: severed %d coordinator connections (in-flight verified: %v)", n, inflight)
	chaos.Partitions++
	if inflight {
		chaos.KillsWithInflight++
	}
	return c.waitFleet(ctx, len(c.cfg.WorkerNames))
}

// killDaemon scrapes (so the dying life's counters are folded into the
// cross-life accumulation), SIGKILLs the daemon, relaunches it over the
// same journal and cache directory, and waits for recovery: API healthy
// and fleet reattached.
func (c *controller) killDaemon(ctx context.Context, chaos *ChaosReport) error {
	c.scrape(ctx)
	c.cfg.Logf("chaos: SIGKILL daemon")
	c.daemon.Process.Kill()
	c.daemon.Wait()
	chaos.DaemonKills++
	d, err := c.cfg.Spec.StartDaemon()
	if err != nil {
		return fmt.Errorf("loadgen: relaunch daemon: %w", err)
	}
	c.daemon = d
	if err := c.waitHealthy(ctx); err != nil {
		return err
	}
	return c.waitFleet(ctx, len(c.cfg.WorkerNames))
}

// diskFull arms the daemon's persistence fault switch (every journal and
// store write fails while FaultFile exists), submits a canary job inside
// the degraded window, then clears the fault and waits for the daemon to
// restore persistence. What it observes — degraded gauge up, canary done,
// gauge back down — feeds the degraded-mode-recovery invariant; a daemon
// that never degrades or never recovers is an invariant violation, not a
// harness error.
func (c *controller) diskFull(ctx context.Context, chaos *ChaosReport) error {
	if err := os.WriteFile(c.cfg.FaultFile, nil, 0o644); err != nil {
		return fmt.Errorf("loadgen: arm fault file: %w", err)
	}
	defer os.Remove(c.cfg.FaultFile) // idempotent; normally removed below
	c.cfg.Logf("chaos: disk-full armed via %s", c.cfg.FaultFile)

	// The canary: a request outside the generated traffic's fingerprint
	// space, so it forces fresh evaluations (and store writes) while the
	// disk is failing. Its journal append is also what flips the daemon to
	// degraded if load writes haven't already.
	canary := c.runner.Requests()[0]
	canary.Seed = 900000 + int64(chaos.DiskFulls)
	canaryDone := make(chan *fedshap.JobStatus, 1)
	go func() {
		st, err := c.submitAndWait(ctx, c.cfg.Client, canary)
		if err != nil {
			c.cfg.Logf("chaos: degraded canary failed: %v", err)
			canaryDone <- nil
			return
		}
		canaryDone <- st
	}()

	if c.pollUntil(ctx, func(m *fedshap.Metrics) bool { return m.Degraded }) {
		chaos.DegradedObserved++
		c.cfg.Logf("chaos: daemon degraded (memory-only persistence)")
	} else {
		c.cfg.Logf("chaos: daemon never reported degraded")
	}
	// The canary was accepted inside the degraded window; it drains with
	// the rest of the queue, so its terminal state is collected by
	// checkDegradedRecovery after the run.
	c.canaries = append(c.canaries, canaryDone)

	os.Remove(c.cfg.FaultFile)
	if c.pollUntil(ctx, func(m *fedshap.Metrics) bool { return !m.Degraded }) {
		chaos.DegradedRecovered++
		c.cfg.Logf("chaos: daemon restored persistence")
	} else {
		c.cfg.Logf("chaos: daemon never recovered from degraded mode")
	}
	chaos.DiskFulls++
	return ctx.Err()
}

// stallWorker SIGSTOPs one fleet worker and keeps it frozen past the
// coordinator's task deadline, then SIGCONTs it. Unlike a kill, the
// worker's connection stays open — only the deadline reaper can rescue
// whatever the coordinator dispatched to it. The in-flight check happens
// AFTER the stop: a task seen on a frozen worker cannot complete, so every
// verified stall must produce a deadline requeue.
func (c *controller) stallWorker(ctx context.Context, chaos *ChaosReport) error {
	victim := c.cfg.WorkerNames[chaos.Stalls%len(c.cfg.WorkerNames)]
	proc, ok := c.workers[victim]
	if !ok {
		return fmt.Errorf("loadgen: no process handle for worker %s", victim)
	}
	if err := proc.Process.Signal(syscall.SIGSTOP); err != nil {
		return fmt.Errorf("loadgen: SIGSTOP worker %s: %w", victim, err)
	}
	// While frozen the coordinator keeps dispatching to it (the connection
	// is healthy and its capacity looks free), so under load in-flight
	// work shows up within a poll or two.
	inflight := c.pollUntil(ctx, func(m *fedshap.Metrics) bool {
		if m.Fleet == nil {
			return false
		}
		for _, w := range m.Fleet.Workers {
			if w.Name == victim && w.InFlight > 0 {
				return true
			}
		}
		return false
	}, c.cfg.StallFor/2)
	c.cfg.Logf("chaos: SIGSTOP worker %s for %s (in-flight verified: %v)", victim, c.cfg.StallFor, inflight)
	if !inflight {
		if m := c.scrape(ctx); m != nil && m.Fleet != nil {
			for _, w := range m.Fleet.Workers {
				c.cfg.Logf("chaos: fleet view: worker %s in-flight %d completed %d", w.Name, w.InFlight, w.Completed)
			}
		}
	}
	chaos.Stalls++
	if inflight {
		chaos.StallsWithInflight++
	}
	select {
	case <-ctx.Done():
		proc.Process.Signal(syscall.SIGCONT)
		return ctx.Err()
	case <-time.After(c.cfg.StallFor):
	}
	if err := proc.Process.Signal(syscall.SIGCONT); err != nil {
		return fmt.Errorf("loadgen: SIGCONT worker %s: %w", victim, err)
	}
	return c.waitFleet(ctx, len(c.cfg.WorkerNames))
}

// flapWorker kills the same worker name FlapKillCount times in quick
// succession — enough strikes inside the coordinator's flap window to
// bench it — then relaunches it and watches the bench refuse the
// handshake before the penalty expires and the worker reattaches.
func (c *controller) flapWorker(ctx context.Context, chaos *ChaosReport) error {
	victim := c.cfg.WorkerNames[chaos.Flaps%len(c.cfg.WorkerNames)]
	onBench := func(m *fedshap.Metrics) bool {
		if m == nil || m.Fleet == nil {
			return false
		}
		for _, name := range m.Fleet.Quarantined {
			if name == victim {
				return true
			}
		}
		return false
	}
	benched := false
	for i := 0; i < c.cfg.FlapKillCount && !benched; i++ {
		m := c.scrape(ctx)
		inflight, oldAddr := false, ""
		if m != nil && m.Fleet != nil {
			for _, w := range m.Fleet.Workers {
				if w.Name == victim {
					oldAddr = w.Addr
					if w.InFlight > 0 {
						inflight = true
					}
				}
			}
		}
		proc, ok := c.workers[victim]
		if !ok {
			return fmt.Errorf("loadgen: no process handle for worker %s", victim)
		}
		c.cfg.Logf("chaos: flap kill %d/%d of worker %s (in-flight verified: %v)",
			i+1, c.cfg.FlapKillCount, victim, inflight)
		proc.Process.Kill()
		proc.Wait()
		if inflight {
			chaos.KillsWithInflight++
		}
		if i == c.cfg.FlapKillCount-1 {
			break // last strike: leave it dead so the bench is observable
		}
		w, err := c.cfg.Spec.StartWorker(victim)
		if err != nil {
			return fmt.Errorf("loadgen: relaunch worker %s: %w", victim, err)
		}
		c.workers[victim] = w
		// The kill only counts as a strike once the coordinator reaps the
		// dead connection, and the NEXT kill only counts if the relaunch
		// actually attached — a stale fleet entry for the victim's name is
		// neither, so incarnations are told apart by connection address.
		// Background disconnects (a stall, an earlier fault) may also have
		// banked strikes already, making this kill the benching one — then
		// the relaunch is being refused at the door and waiting for a full
		// fleet would deadlock. Wait for either outcome.
		c.pollUntil(ctx, func(m *fedshap.Metrics) bool {
			if onBench(m) {
				benched = true
				return true
			}
			if m == nil || m.Fleet == nil {
				return false
			}
			fresh, stale := false, false
			for _, w := range m.Fleet.Workers {
				if w.Name != victim {
					continue
				}
				if oldAddr != "" && w.Addr == oldAddr {
					stale = true
				} else {
					fresh = true
				}
			}
			return fresh && !stale
		})
	}

	if benched || c.pollUntil(ctx, onBench) {
		chaos.QuarantinesObserved++
		c.cfg.Logf("chaos: worker %s benched by flap quarantine", victim)
	} else {
		c.cfg.Logf("chaos: worker %s never appeared on the quarantine bench", victim)
	}

	// Relaunch while benched (unless an early bench means a live worker
	// process is already dialing into the refusal): every dial must be
	// refused and counted by the coordinator until the penalty expires,
	// then the worker's own retry loop gets it back into the fleet.
	rejectionsBefore := c.runner.QuarantineRejections()
	if !benched {
		w, err := c.cfg.Spec.StartWorker(victim)
		if err != nil {
			return fmt.Errorf("loadgen: relaunch worker %s: %w", victim, err)
		}
		c.workers[victim] = w
	}
	if c.pollUntil(ctx, func(*fedshap.Metrics) bool {
		return c.runner.QuarantineRejections() > rejectionsBefore
	}) {
		c.cfg.Logf("chaos: benched worker %s refused at the door", victim)
	}
	chaos.Flaps++
	return c.waitFleet(ctx, len(c.cfg.WorkerNames))
}

// pollUntil scrapes /metrics until cond holds, an optional timeout (or
// the settle timeout) elapses, or ctx dies. It reports whether cond was
// ever observed.
func (c *controller) pollUntil(ctx context.Context, cond func(*fedshap.Metrics) bool, timeout ...time.Duration) bool {
	limit := c.cfg.SettleTimeout
	if len(timeout) > 0 {
		limit = timeout[0]
	}
	deadline := time.Now().Add(limit)
	for {
		if m := c.scrape(ctx); m != nil && cond(m) {
			return true
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return false
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// scrape samples /metrics through the Runner's accumulating scraper.
func (c *controller) scrape(ctx context.Context) *fedshap.Metrics {
	return c.runner.ScrapeNow(ctx)
}

// waitHealthy blocks until the daemon answers the API again.
func (c *controller) waitHealthy(ctx context.Context) error {
	deadline := time.Now().Add(c.cfg.SettleTimeout)
	for {
		hctx, cancel := context.WithTimeout(ctx, time.Second)
		_, err := c.cfg.Client.Metrics(hctx)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: daemon not healthy after %s: %w", c.cfg.SettleTimeout, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// waitFleet blocks until n workers are attached to the coordinator.
func (c *controller) waitFleet(ctx context.Context, n int) error {
	if n == 0 {
		return nil
	}
	deadline := time.Now().Add(c.cfg.SettleTimeout)
	for {
		hctx, cancel := context.WithTimeout(ctx, time.Second)
		workers, err := c.cfg.Client.Workers(hctx)
		cancel()
		if err == nil && len(workers) >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: fleet did not reach %d workers within %s", n, c.cfg.SettleTimeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// checkAllTerminal: every accepted submission terminal, none failed or
// cancelled.
func (c *controller) checkAllTerminal(rep *Report) {
	ok := rep.Submitted == rep.Jobs && rep.Done == rep.Submitted
	detail := fmt.Sprintf("%d/%d submitted, %d done, %d failed, %d cancelled",
		rep.Submitted, rep.Jobs, rep.Done, rep.Failed, rep.Cancelled)
	rep.Chaos.Invariants = append(rep.Chaos.Invariants, InvariantResult{
		Name: "all-terminal", OK: ok, Detail: detail,
	})
}

// checkRedispatchAccounting: the accumulated worker-death requeue counter
// must cover every induced fault that verifiably had work in flight. (A
// requeue burst can be lost if the daemon is SIGKILLed between the
// requeue and the next scrape; the controller scrapes immediately before
// each kill to close that window.)
func (c *controller) checkRedispatchAccounting(chaos *ChaosReport) {
	ok := chaos.ObservedDeathRequeues >= int64(chaos.KillsWithInflight)
	detail := fmt.Sprintf("%d death requeues observed across daemon lives, %d induced deaths with in-flight work",
		chaos.ObservedDeathRequeues, chaos.KillsWithInflight)
	chaos.Invariants = append(chaos.Invariants, InvariantResult{
		Name: "redispatch-accounting", OK: ok, Detail: detail,
	})
}

// checkDeadlineEnforced: every stall that verifiably froze in-flight work
// must be rescued by the task-deadline reaper — the accumulated deadline
// requeue counter covers the verified stalls.
func (c *controller) checkDeadlineEnforced(chaos *ChaosReport) {
	ok := chaos.ObservedDeadlineRequeues >= int64(chaos.StallsWithInflight)
	detail := fmt.Sprintf("%d deadline requeues observed across daemon lives, %d stalls with verified in-flight work",
		chaos.ObservedDeadlineRequeues, chaos.StallsWithInflight)
	chaos.Invariants = append(chaos.Invariants, InvariantResult{
		Name: "deadline-enforced", OK: ok, Detail: detail,
	})
}

// checkQuarantineAccounting: every flap fault must have benched its
// victim, and every bench must have refused at least one reattach.
func (c *controller) checkQuarantineAccounting(chaos *ChaosReport) {
	ok := chaos.QuarantinesObserved == chaos.Flaps &&
		chaos.ObservedQuarantineRejections >= int64(chaos.Flaps)
	detail := fmt.Sprintf("%d/%d flap victims benched, %d quarantine rejections observed",
		chaos.QuarantinesObserved, chaos.Flaps, chaos.ObservedQuarantineRejections)
	chaos.Invariants = append(chaos.Invariants, InvariantResult{
		Name: "quarantine-accounting", OK: ok, Detail: detail,
	})
}

// checkDegradedRecovery: every disk-full fault must have flipped the
// daemon to degraded, completed the canary job it admitted inside the
// degraded window, and restored persistence once the fault cleared. The
// canaries queued behind the live load, so their verdicts are collected
// here, after the run drained.
func (c *controller) checkDegradedRecovery(ctx context.Context, chaos *ChaosReport) {
	for _, ch := range c.canaries {
		select {
		case st := <-ch:
			if st != nil && st.State == fedshap.JobDone {
				chaos.DegradedCanariesDone++
			}
		case <-time.After(c.cfg.SettleTimeout):
			c.cfg.Logf("chaos: degraded canary never reached a terminal state")
		case <-ctx.Done():
		}
	}
	ok := chaos.DegradedObserved == chaos.DiskFulls &&
		chaos.DegradedRecovered == chaos.DiskFulls &&
		chaos.DegradedCanariesDone == chaos.DiskFulls
	detail := fmt.Sprintf("%d disk-fulls: %d degraded flips, %d canaries done while degraded, %d recoveries",
		chaos.DiskFulls, chaos.DegradedObserved, chaos.DegradedCanariesDone, chaos.DegradedRecovered)
	chaos.Invariants = append(chaos.Invariants, InvariantResult{
		Name: "degraded-mode-recovery", OK: ok, Detail: detail,
	})
}

// checkReplayZeroFresh resubmits every distinct request of the run and
// asserts the store answers all of them warm: done, zero fresh
// evaluations. Returns the replay reports keyed by request for the
// control comparison.
func (c *controller) checkReplayZeroFresh(ctx context.Context, r *Runner, chaos *ChaosReport) map[string]*fedshap.Report {
	unique := r.UniqueRequests()
	reports := make(map[string]*fedshap.Report, len(unique))
	var fresh int64
	failures := 0
	for _, req := range unique {
		st, err := c.submitAndWait(ctx, c.cfg.Client, req)
		if err != nil || st.State != fedshap.JobDone {
			failures++
			continue
		}
		fresh += int64(st.FreshEvals)
		reports[requestKey(req)] = st.Report
	}
	ok := failures == 0 && fresh == 0
	detail := fmt.Sprintf("%d distinct requests replayed, %d fresh evals, %d failures", len(unique), fresh, failures)
	chaos.Invariants = append(chaos.Invariants, InvariantResult{
		Name: "replay-zero-fresh", OK: ok, Detail: detail,
	})
	return reports
}

// checkControlBitIdentical runs every distinct request on an undisturbed
// control daemon and compares the values bit for bit against the chaos
// daemon's replayed reports.
func (c *controller) checkControlBitIdentical(ctx context.Context, r *Runner, chaos *ChaosReport, replayed map[string]*fedshap.Report) {
	if c.cfg.Spec.StartControl == nil || c.cfg.ControlClient == nil {
		return
	}
	ctl, err := c.cfg.Spec.StartControl()
	if err != nil {
		chaos.Invariants = append(chaos.Invariants, InvariantResult{
			Name: "control-bit-identical", Detail: fmt.Sprintf("control daemon failed to start: %v", err),
		})
		return
	}
	c.control = ctl
	if err := waitClient(ctx, c.cfg.ControlClient, c.cfg.SettleTimeout); err != nil {
		chaos.Invariants = append(chaos.Invariants, InvariantResult{
			Name: "control-bit-identical", Detail: err.Error(),
		})
		return
	}
	unique := r.UniqueRequests()
	mismatches, failures, compared := 0, 0, 0
	var firstDiff string
	for _, req := range unique {
		st, err := c.submitAndWait(ctx, c.cfg.ControlClient, req)
		if err != nil || st.State != fedshap.JobDone {
			failures++
			continue
		}
		chaosRep := replayed[requestKey(req)]
		if chaosRep == nil {
			continue // replay already recorded the failure
		}
		compared++
		if !bitIdentical(chaosRep.Values, st.Report.Values) {
			mismatches++
			if firstDiff == "" {
				firstDiff = fmt.Sprintf("; first diff: chaos %v vs control %v", chaosRep.Values, st.Report.Values)
			}
		}
	}
	ok := failures == 0 && mismatches == 0 && compared > 0
	detail := fmt.Sprintf("%d reports compared, %d mismatched, %d control failures%s", compared, mismatches, failures, firstDiff)
	chaos.Invariants = append(chaos.Invariants, InvariantResult{
		Name: "control-bit-identical", OK: ok, Detail: detail,
	})
}

// submitAndWait submits one request and polls it to a terminal state,
// riding out transient transport errors.
func (c *controller) submitAndWait(ctx context.Context, client *fedshap.ServiceClient, req fedshap.JobRequest) (*fedshap.JobStatus, error) {
	deadline := time.Now().Add(c.cfg.SettleTimeout)
	var st *fedshap.JobStatus
	var err error
	for {
		st, err = client.Submit(ctx, req)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("loadgen: submit: %w", err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
	for {
		cur, err := client.Job(ctx, st.ID)
		if err == nil && cur.State.Terminal() {
			return cur, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("loadgen: job %s not terminal within %s", st.ID, c.cfg.SettleTimeout)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// waitClient blocks until a daemon answers its API.
func waitClient(ctx context.Context, client *fedshap.ServiceClient, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		hctx, cancel := context.WithTimeout(ctx, time.Second)
		_, err := client.Metrics(hctx)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: control daemon not healthy after %s: %w", timeout, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// bitIdentical compares two value vectors bit for bit — the determinism
// contract is exact float equality, not tolerance.
func bitIdentical(a, b fedshap.Values) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// stopAll tears every launched process down (SIGKILL; the run is over).
func (c *controller) stopAll() {
	for _, w := range c.workers {
		if w != nil && w.Process != nil {
			w.Process.Kill()
			w.Wait()
		}
	}
	for _, d := range []*exec.Cmd{c.daemon, c.control} {
		if d != nil && d.Process != nil {
			d.Process.Kill()
			d.Wait()
		}
	}
}
