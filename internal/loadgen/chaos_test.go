package loadgen

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"fedshap"
)

// TestChaosResilienceFaults exercises the defense-in-depth fault types
// end to end against real OS processes: a disk-full window (persistence
// fault file) that must flip the daemon to degraded memory-only operation
// and back, a SIGSTOPped worker whose frozen evaluations only the
// task-deadline reaper can rescue, and a flapping worker that must be
// benched by the quarantine and refused at the door when it returns. Six
// invariants must hold: all-terminal, replay-zero-fresh,
// redispatch-accounting, deadline-enforced, quarantine-accounting and
// degraded-mode-recovery.
func TestChaosResilienceFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon and worker OS processes")
	}
	dir := t.TempDir()
	apiAddr := freeAddr(t)
	workerAddr := freeAddr(t)
	faultFile := filepath.Join(dir, "fault-disk-full")

	// The game delay is deliberately large and every job gets its own
	// fingerprint: warm store hits never touch the fleet, so the traffic
	// must stay fresh for the whole run to guarantee the stall fault
	// freezes a worker that actually has evaluations in flight.
	const gameDelay = "150"
	chaosDir := filepath.Join(dir, "chaos")
	spec := ProcessSpec{
		StartDaemon: func() (*exec.Cmd, error) {
			return spawnHelper(
				"FEDSHAP_LOADTEST_DAEMON_DIR="+chaosDir,
				"FEDSHAP_LOADTEST_API_ADDR="+apiAddr,
				"FEDSHAP_LOADTEST_WORKER_ADDR="+workerAddr,
				"FEDSHAP_LOADTEST_GAME_DELAY_MS="+gameDelay,
				"FEDSHAP_LOADTEST_FAULT_FILE="+faultFile,
				"FEDSHAP_LOADTEST_TASK_DEADLINE_MS=400",
				"FEDSHAP_LOADTEST_FLAP_THRESHOLD=2",
				"FEDSHAP_LOADTEST_BENCH_BASE_MS=3000",
			)
		},
		StartWorker: func(name string) (*exec.Cmd, error) {
			return spawnHelper(
				"FEDSHAP_LOADTEST_COORD="+workerAddr,
				"FEDSHAP_LOADTEST_WORKER_NAME="+name,
				"FEDSHAP_LOADTEST_GAME_DELAY_MS="+gameDelay,
			)
		},
	}

	client := fedshap.NewServiceClient("http://" + apiAddr)
	r, err := NewRunner(Config{
		Client:       client,
		Jobs:         36,
		Concurrency:  6,
		Fingerprints: 36,
		WarmFraction: 0,
		Watchers:     2,
		Seed:         7,
		Timeout:      90 * time.Second,
		Mix:          Mix{Gammas: []int{8, 12}},
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	rep, err := RunChaos(ctx, r, ChaosConfig{
		Spec:          spec,
		Client:        client,
		WorkerNames:   []string{"res-w0", "res-w1"},
		DiskFull:      1,
		Stalls:        1,
		Flaps:         1,
		FaultFile:     faultFile,
		StallFor:      2 * time.Second,
		FlapKillCount: 2,
		SettleTimeout: 45 * time.Second,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Chaos == nil {
		t.Fatal("no chaos section in report")
	}
	if rep.Chaos.DiskFulls != 1 || rep.Chaos.Stalls != 1 || rep.Chaos.Flaps != 1 {
		t.Errorf("fault counts = %d disk-full, %d stall, %d flap; want 1/1/1",
			rep.Chaos.DiskFulls, rep.Chaos.Stalls, rep.Chaos.Flaps)
	}
	if rep.Chaos.StallsWithInflight < 1 {
		t.Error("stall never froze verified in-flight work — the deadline invariant was vacuous")
	}
	wantInvariants := map[string]bool{
		"all-terminal": false, "replay-zero-fresh": false,
		"redispatch-accounting": false, "deadline-enforced": false,
		"quarantine-accounting": false, "degraded-mode-recovery": false,
	}
	for _, inv := range rep.Chaos.Invariants {
		if _, known := wantInvariants[inv.Name]; !known {
			t.Errorf("unexpected invariant %q", inv.Name)
			continue
		}
		wantInvariants[inv.Name] = true
		if !inv.OK {
			t.Errorf("invariant %s violated: %s", inv.Name, inv.Detail)
		}
	}
	for name, seen := range wantInvariants {
		if !seen {
			t.Errorf("invariant %s was not checked", name)
		}
	}
	if rep.Submitted != 36 || rep.Done != 36 {
		t.Errorf("load = %d submitted, %d done; want 36/36", rep.Submitted, rep.Done)
	}
	t.Logf("resilience chaos report:\n%s", rep.Summary())
}

// TestChaosRecoveryInvariants is the fault-injection end-to-end: a real
// daemon OS process with a two-worker fleet takes a mixed load while the
// controller SIGKILLs a worker mid-evaluation, severs every coordinator
// connection, SIGKILLs and relaunches the daemon itself over the same
// journal, then kills a second worker — and the four recovery invariants
// must hold: every job terminal, replay fully warm, reports bit-identical
// to an undisturbed control daemon, and the worker-death requeue counter
// accounting for every induced death with work in flight.
func TestChaosRecoveryInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon and worker OS processes")
	}
	dir := t.TempDir()
	apiAddr := freeAddr(t)
	workerAddr := freeAddr(t)
	controlAddr := freeAddr(t)

	proxy, err := NewProxy("127.0.0.1:0", workerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	const gameDelay = "25"
	chaosDir := filepath.Join(dir, "chaos")
	controlDir := filepath.Join(dir, "control")
	spec := ProcessSpec{
		StartDaemon: func() (*exec.Cmd, error) {
			return spawnHelper(
				"FEDSHAP_LOADTEST_DAEMON_DIR="+chaosDir,
				"FEDSHAP_LOADTEST_API_ADDR="+apiAddr,
				"FEDSHAP_LOADTEST_WORKER_ADDR="+workerAddr,
				"FEDSHAP_LOADTEST_GAME_DELAY_MS="+gameDelay,
			)
		},
		StartWorker: func(name string) (*exec.Cmd, error) {
			return spawnHelper(
				"FEDSHAP_LOADTEST_COORD="+proxy.Addr(),
				"FEDSHAP_LOADTEST_WORKER_NAME="+name,
				"FEDSHAP_LOADTEST_GAME_DELAY_MS="+gameDelay,
			)
		},
		StartControl: func() (*exec.Cmd, error) {
			return spawnHelper(
				"FEDSHAP_LOADTEST_DAEMON_DIR="+controlDir,
				"FEDSHAP_LOADTEST_API_ADDR="+controlAddr,
			)
		},
	}

	client := fedshap.NewServiceClient("http://" + apiAddr)
	r, err := NewRunner(Config{
		Client:       client,
		Jobs:         36,
		Concurrency:  6,
		BatchSize:    3,
		Fingerprints: 5,
		WarmFraction: 0.25,
		Watchers:     3,
		Seed:         11,
		Timeout:      90 * time.Second,
		Mix:          Mix{Gammas: []int{5, 9}},
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	rep, err := RunChaos(ctx, r, ChaosConfig{
		Spec:          spec,
		Client:        client,
		ControlClient: fedshap.NewServiceClient("http://" + controlAddr),
		WorkerNames:   []string{"chaos-w0", "chaos-w1"},
		Proxy:         proxy,
		DaemonKills:   1,
		WorkerKills:   2,
		Partitions:    1,
		SettleTimeout: 45 * time.Second,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Chaos == nil {
		t.Fatal("no chaos section in report")
	}
	if rep.Chaos.DaemonKills != 1 || rep.Chaos.WorkerKills != 2 || rep.Chaos.Partitions != 1 {
		t.Errorf("fault counts = %d daemon, %d worker, %d partition; want 1/2/1",
			rep.Chaos.DaemonKills, rep.Chaos.WorkerKills, rep.Chaos.Partitions)
	}
	wantInvariants := map[string]bool{
		"all-terminal": false, "replay-zero-fresh": false,
		"control-bit-identical": false, "redispatch-accounting": false,
	}
	for _, inv := range rep.Chaos.Invariants {
		if _, known := wantInvariants[inv.Name]; !known {
			t.Errorf("unexpected invariant %q", inv.Name)
			continue
		}
		wantInvariants[inv.Name] = true
		if !inv.OK {
			t.Errorf("invariant %s violated: %s", inv.Name, inv.Detail)
		}
	}
	for name, seen := range wantInvariants {
		if !seen {
			t.Errorf("invariant %s was not checked", name)
		}
	}
	if len(rep.Chaos.Violations()) != 0 {
		t.Errorf("Violations() = %v", rep.Chaos.Violations())
	}
	if rep.Submitted != 36 || rep.Done != 36 {
		t.Errorf("load = %d submitted, %d done; want 36/36", rep.Submitted, rep.Done)
	}
	// The report is a full load report too: percentiles and throughput
	// survive the chaos.
	if rep.JobLatency.Count != 36 || rep.Throughput <= 0 {
		t.Errorf("latency population %d, throughput %v", rep.JobLatency.Count, rep.Throughput)
	}
	summary := rep.Summary()
	if len(summary) == 0 {
		t.Error("empty summary")
	}
	t.Logf("chaos report:\n%s", summary)
}
