package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"fedshap"
)

// Percentiles summarises a latency population in seconds. The quantile
// estimator is the nearest-rank method over the sorted sample — simple,
// deterministic, and exact for the population sizes a load run produces.
type Percentiles struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
	Max   float64 `json:"max_seconds"`
	Mean  float64 `json:"mean_seconds"`
}

// percentilesOf computes the summary of a duration sample. An empty
// sample yields the zero value.
func percentilesOf(durations []time.Duration) Percentiles {
	if len(durations) == 0 {
		return Percentiles{}
	}
	sorted := make([]time.Duration, len(durations))
	copy(sorted, durations)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	rank := func(p float64) float64 {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i].Seconds()
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return Percentiles{
		Count: len(sorted),
		P50:   rank(0.50),
		P95:   rank(0.95),
		P99:   rank(0.99),
		Max:   sorted[len(sorted)-1].Seconds(),
		Mean:  sum.Seconds() / float64(len(sorted)),
	}
}

// WatcherStats summarises the SSE watcher pool's view of the run.
type WatcherStats struct {
	// Jobs is the number of jobs the pool watched to a terminal state.
	Jobs int `json:"jobs"`
	// Events counts every SSE notification the watchers received.
	Events int64 `json:"events"`
	// Resumes counts watches that fell back to polling after the event
	// stream broke permanently (e.g. across a daemon SIGKILL) — the jobs
	// still reached a terminal state, just without a live stream.
	Resumes int64 `json:"polling_fallbacks"`
}

// ChaosReport records the faults a chaos run injected and the invariant
// verdicts measured afterwards. Invariant fields are nil until checked.
type ChaosReport struct {
	// DaemonKills / WorkerKills / Partitions count induced faults.
	DaemonKills int `json:"daemon_kills"`
	WorkerKills int `json:"worker_kills"`
	Partitions  int `json:"partitions"`
	// DiskFulls / Stalls / Flaps count the resilience faults: persistence
	// write failures forced via the daemon's fault file, workers SIGSTOPped
	// past the task deadline, and workers killed repeatedly to trip the
	// flap quarantine.
	DiskFulls int `json:"disk_fulls"`
	Stalls    int `json:"stalls"`
	Flaps     int `json:"flaps"`
	// KillsWithInflight counts worker kills that verifiably interrupted
	// in-flight evaluations (the kills the redispatch invariant covers);
	// StallsWithInflight the same for SIGSTOPped workers (the stalls the
	// deadline invariant covers).
	KillsWithInflight  int `json:"kills_with_inflight"`
	StallsWithInflight int `json:"stalls_with_inflight"`
	// DegradedObserved / DegradedRecovered / DegradedCanariesDone track
	// each disk-full fault: the degraded gauge seen at 1, seen back at 0
	// after the fault cleared, and the canary job submitted inside the
	// degraded window reaching done.
	DegradedObserved     int `json:"degraded_observed"`
	DegradedRecovered    int `json:"degraded_recovered"`
	DegradedCanariesDone int `json:"degraded_canaries_done"`
	// QuarantinesObserved counts flap faults whose victim was seen on the
	// quarantine bench.
	QuarantinesObserved int `json:"quarantines_observed"`
	// ObservedDeathRequeues is the cumulative
	// fedvald_fleet_redispatch_total{reason="worker-death"} across every
	// daemon life of the run; ObservedDeadlineRequeues and
	// ObservedQuarantineRejections accumulate the task-deadline and
	// quarantine counters the same way.
	ObservedDeathRequeues        int64 `json:"observed_death_requeues"`
	ObservedDeadlineRequeues     int64 `json:"observed_deadline_requeues"`
	ObservedQuarantineRejections int64 `json:"observed_quarantine_rejections"`
	// Invariants lists each checked invariant with its verdict.
	Invariants []InvariantResult `json:"invariants"`
}

// InvariantResult is one checked system invariant.
type InvariantResult struct {
	// Name identifies the invariant: all-terminal, replay-zero-fresh,
	// control-bit-identical, redispatch-accounting, deadline-enforced,
	// quarantine-accounting, degraded-mode-recovery.
	Name string `json:"name"`
	// OK reports whether the invariant held.
	OK bool `json:"ok"`
	// Detail explains a violation (or carries a measurement note).
	Detail string `json:"detail,omitempty"`
}

// Violations returns the failed invariants.
func (c *ChaosReport) Violations() []InvariantResult {
	var out []InvariantResult
	for _, inv := range c.Invariants {
		if !inv.OK {
			out = append(out, inv)
		}
	}
	return out
}

// Report is the outcome of one load run: population counts, latency
// percentiles, throughput, cache effectiveness, the watcher pool's view,
// and (for chaos runs) the fault log and invariant verdicts.
type Report struct {
	// Jobs is the number of submissions attempted; Submitted of those
	// accepted by the daemon (after queue-full retries).
	Jobs      int `json:"jobs"`
	Submitted int `json:"submitted"`
	// Done/Failed/Cancelled/TimedOut partition the terminal states
	// observed.
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	TimedOut  int `json:"timed_out"`
	// Rejected429s counts submissions the daemon shed with HTTP 429
	// before eventually accepting them — nonzero under queue saturation,
	// it measures how hard admission control worked during the run.
	Rejected429s int64 `json:"rejected_429s"`
	// Fingerprints is the number of distinct problem fingerprints the
	// traffic spread across; WarmResubmits the submissions that repeated
	// an earlier request verbatim (exercising the persistent store).
	Fingerprints  int `json:"fingerprints"`
	WarmResubmits int `json:"warm_resubmits"`
	// WallSeconds is the end-to-end run time, submission of the first job
	// to the last terminal state; Throughput is jobs completed per second
	// of wall time.
	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"throughput_jobs_per_sec"`
	// SubmitLatency measures the submission round trip (batch latency is
	// attributed to each job in the batch), QueueWait the span from
	// submission to pickup by a pool worker, JobLatency submission to
	// terminal state.
	SubmitLatency Percentiles `json:"submit_latency"`
	QueueWait     Percentiles `json:"queue_wait"`
	JobLatency    Percentiles `json:"job_latency"`
	// FreshEvals / WarmedCoalitions sum the terminal statuses' counters.
	FreshEvals       int64 `json:"fresh_evals"`
	WarmedCoalitions int64 `json:"warmed_coalitions"`
	// Watchers is the SSE watcher pool summary.
	Watchers WatcherStats `json:"watchers"`
	// Metrics is the daemon's final /metrics snapshot (nil if the last
	// scrape failed).
	Metrics *fedshap.Metrics `json:"metrics,omitempty"`
	// Chaos is nil for plain load runs.
	Chaos *ChaosReport `json:"chaos,omitempty"`
}

// WriteJSON pretty-prints the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteBenchLines emits the report's headline numbers in the line-shaped
// benchmark JSON scripts/bench.sh records ({"name": ..., "ns_per_op": ...}
// objects, one per line, comma-separated) so a load run lands on the same
// BENCH_PR*.json trajectory as the microbenchmarks and
// scripts/bench_diff.sh can gate on it. Durations are ns; throughput is
// encoded as mean ns per completed job so "lower is better" holds for
// every line.
func (r *Report) WriteBenchLines(w io.Writer) error {
	completed := r.Done + r.Failed + r.Cancelled
	nsPerJob := 0.0
	if r.Throughput > 0 {
		nsPerJob = 1e9 / r.Throughput
	}
	lines := []struct {
		name string
		ns   float64
	}{
		{"LoadSubmitP50", r.SubmitLatency.P50 * 1e9},
		{"LoadSubmitP95", r.SubmitLatency.P95 * 1e9},
		{"LoadQueueWaitP50", r.QueueWait.P50 * 1e9},
		{"LoadQueueWaitP95", r.QueueWait.P95 * 1e9},
		{"LoadQueueWaitP99", r.QueueWait.P99 * 1e9},
		{"LoadJobLatencyP50", r.JobLatency.P50 * 1e9},
		{"LoadJobLatencyP95", r.JobLatency.P95 * 1e9},
		{"LoadJobLatencyP99", r.JobLatency.P99 * 1e9},
		{"LoadNsPerCompletedJob", nsPerJob},
	}
	for i, l := range lines {
		sep := ","
		if i == len(lines)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "    {\"name\": \"%s\", \"iters\": %d, \"ns_per_op\": %.0f}%s\n",
			l.name, completed, l.ns, sep); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a terse human-readable digest.
func (r *Report) Summary() string {
	s := fmt.Sprintf(
		"jobs %d (done %d, failed %d, cancelled %d, timed out %d) over %d fingerprints, %d warm resubmits, %d shed with 429\n"+
			"wall %.2fs, throughput %.1f jobs/s\n"+
			"submit   p50 %8.1fms  p95 %8.1fms\n"+
			"queue    p50 %8.1fms  p95 %8.1fms  p99 %8.1fms\n"+
			"latency  p50 %8.1fms  p95 %8.1fms  p99 %8.1fms\n"+
			"evals: %d fresh, %d warmed; watchers: %d jobs, %d events, %d polling fallbacks",
		r.Submitted, r.Done, r.Failed, r.Cancelled, r.TimedOut, r.Fingerprints, r.WarmResubmits, r.Rejected429s,
		r.WallSeconds, r.Throughput,
		r.SubmitLatency.P50*1e3, r.SubmitLatency.P95*1e3,
		r.QueueWait.P50*1e3, r.QueueWait.P95*1e3, r.QueueWait.P99*1e3,
		r.JobLatency.P50*1e3, r.JobLatency.P95*1e3, r.JobLatency.P99*1e3,
		r.FreshEvals, r.WarmedCoalitions,
		r.Watchers.Jobs, r.Watchers.Events, r.Watchers.Resumes)
	if r.Chaos != nil {
		s += fmt.Sprintf("\nchaos: %d daemon kills, %d worker kills (%d with in-flight work), %d partitions, %d death requeues observed",
			r.Chaos.DaemonKills, r.Chaos.WorkerKills, r.Chaos.KillsWithInflight,
			r.Chaos.Partitions, r.Chaos.ObservedDeathRequeues)
		if r.Chaos.DiskFulls+r.Chaos.Stalls+r.Chaos.Flaps > 0 {
			s += fmt.Sprintf("\nchaos: %d disk-fulls (%d canaries done), %d stalls (%d with in-flight work, %d deadline requeues), %d flaps (%d quarantine rejections)",
				r.Chaos.DiskFulls, r.Chaos.DegradedCanariesDone,
				r.Chaos.Stalls, r.Chaos.StallsWithInflight, r.Chaos.ObservedDeadlineRequeues,
				r.Chaos.Flaps, r.Chaos.ObservedQuarantineRejections)
		}
		for _, inv := range r.Chaos.Invariants {
			mark := "ok  "
			if !inv.OK {
				mark = "FAIL"
			}
			s += fmt.Sprintf("\n  %s %-24s %s", mark, inv.Name, inv.Detail)
		}
	}
	return s
}
