package loadgen

import (
	"bufio"
	"fmt"
	"net"
	"testing"
	"time"
)

// TestProxySeverAndHeal: connections relayed through the proxy carry
// traffic both ways, SeverAll cuts every active connection at once, and
// new connections succeed immediately afterwards (the partition heals on
// redial).
func TestProxySeverAndHeal(t *testing.T) {
	// Upstream: a line-echo server standing in for the coordinator.
	up, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	go func() {
		for {
			c, err := up.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "echo %s\n", sc.Text())
				}
			}(c)
		}
	}()

	p, err := NewProxy("127.0.0.1:0", up.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	dial := func() (net.Conn, *bufio.Scanner) {
		t.Helper()
		c, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return c, bufio.NewScanner(c)
	}
	roundtrip := func(c net.Conn, sc *bufio.Scanner, msg string) {
		t.Helper()
		if _, err := fmt.Fprintln(c, msg); err != nil {
			t.Fatalf("write: %v", err)
		}
		if !sc.Scan() {
			t.Fatalf("no echo for %q: %v", msg, sc.Err())
		}
		if got, want := sc.Text(), "echo "+msg; got != want {
			t.Fatalf("echo = %q, want %q", got, want)
		}
	}

	c1, sc1 := dial()
	defer c1.Close()
	c2, sc2 := dial()
	defer c2.Close()
	roundtrip(c1, sc1, "one")
	roundtrip(c2, sc2, "two")

	if n := p.SeverAll(); n != 4 { // two relayed pairs = four registered conns
		t.Errorf("SeverAll cut %d conns, want 4", n)
	}
	if p.Severs() != 1 {
		t.Errorf("Severs() = %d, want 1", p.Severs())
	}
	// Both severed connections are dead: reads drain and hit EOF/reset.
	c1.SetReadDeadline(time.Now().Add(2 * time.Second))
	if sc1.Scan() {
		t.Error("severed connection still delivered a line")
	}

	// The partition heals: a fresh dial relays again.
	c3, sc3 := dial()
	defer c3.Close()
	roundtrip(c3, sc3, "three")
}
