package loadgen

import (
	"io"
	"net"
	"sync"
)

// Proxy is a severable TCP relay the chaos controller places between the
// worker fleet and the daemon's coordinator listener: workers dial the
// proxy, the proxy dials the real coordinator, and SeverAll cuts every
// active connection at once to simulate a network partition. The workers'
// -retry loops then reconnect through the proxy, and the coordinator must
// requeue whatever the partitioned workers had in flight.
type Proxy struct {
	ln     net.Listener
	target string

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	severs int
}

// NewProxy starts a relay on addr (e.g. "127.0.0.1:0") forwarding to
// target.
func NewProxy(addr, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	go p.accept()
	return p, nil
}

// Addr is the address workers should dial instead of the coordinator.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Severs reports how many times SeverAll has fired.
func (p *Proxy) Severs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.severs
}

// SeverAll closes every active relayed connection, in both directions.
// New connections are still accepted afterwards — the partition heals as
// soon as the workers redial.
func (p *Proxy) SeverAll() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.conns)
	for c := range p.conns {
		c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.severs++
	return n
}

// Close shuts the listener and severs everything for good.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.SeverAll()
	return err
}

func (p *Proxy) accept() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.relay(client)
	}
}

// relay bridges one worker connection to the coordinator. Both legs are
// registered so SeverAll kills the pair.
func (p *Proxy) relay(client net.Conn) {
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		client.Close()
		upstream.Close()
		return
	}
	p.conns[client] = struct{}{}
	p.conns[upstream] = struct{}{}
	p.mu.Unlock()

	done := make(chan struct{}, 2)
	go func() { io.Copy(upstream, client); done <- struct{}{} }()
	go func() { io.Copy(client, upstream); done <- struct{}{} }()
	<-done // either direction closing tears down the pair
	client.Close()
	upstream.Close()
	<-done
	p.mu.Lock()
	delete(p.conns, client)
	delete(p.conns, upstream)
	p.mu.Unlock()
}
