package loadgen

import (
	"testing"
	"time"
)

// TestPercentilesEdges pins the nearest-rank estimator on the degenerate
// populations a short or failed load run produces: no samples, a single
// sample, an all-equal population, and samples so small that p95/p99
// clamp onto the maximum. The nearest-rank index is
// int(p*n + 0.5) - 1 clamped into [0, n-1], so for n ≤ 10 every high
// quantile is simply the max — these tests make that contract explicit.
func TestPercentilesEdges(t *testing.T) {
	ms := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		name   string
		sample []time.Duration
		want   Percentiles
	}{
		{name: "empty", sample: nil, want: Percentiles{}},
		{name: "empty non-nil", sample: []time.Duration{}, want: Percentiles{}},
		{
			name:   "single sample",
			sample: ms(10),
			want:   Percentiles{Count: 1, P50: 0.010, P95: 0.010, P99: 0.010, Max: 0.010, Mean: 0.010},
		},
		{
			name:   "all equal",
			sample: ms(7, 7, 7, 7, 7),
			want:   Percentiles{Count: 5, P50: 0.007, P95: 0.007, P99: 0.007, Max: 0.007, Mean: 0.007},
		},
		{
			// n=2: p50 ranks onto the lower sample, p95/p99 onto the max.
			name:   "two samples",
			sample: ms(100, 1),
			want:   Percentiles{Count: 2, P50: 0.001, P95: 0.100, P99: 0.100, Max: 0.100, Mean: 0.0505},
		},
		{
			// n=3 unsorted: the estimator sorts; p50 is the middle sample.
			name:   "three samples unsorted",
			sample: ms(3, 1, 2),
			want:   Percentiles{Count: 3, P50: 0.002, P95: 0.003, P99: 0.003, Max: 0.003, Mean: 0.002},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := percentilesOf(tc.sample)
			near := func(a, b float64) bool { d := a - b; return d > -1e-12 && d < 1e-12 }
			if got.Count != tc.want.Count ||
				!near(got.P50, tc.want.P50) || !near(got.P95, tc.want.P95) ||
				!near(got.P99, tc.want.P99) || !near(got.Max, tc.want.Max) ||
				!near(got.Mean, tc.want.Mean) {
				t.Errorf("percentilesOf(%v) = %+v, want %+v", tc.sample, got, tc.want)
			}
		})
	}

	// percentilesOf must not reorder the caller's slice: the report keeps
	// raw latencies in arrival order for the trajectory output.
	orig := ms(5, 1, 3)
	percentilesOf(orig)
	if orig[0] != 5*time.Millisecond || orig[1] != 1*time.Millisecond || orig[2] != 3*time.Millisecond {
		t.Errorf("percentilesOf mutated its input: %v", orig)
	}
}
