package loadgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"fedshap"
	"fedshap/internal/combin"
	"fedshap/internal/evalnet"
	"fedshap/internal/experiments"
	"fedshap/internal/resilience"
	"fedshap/internal/utility"
	"fedshap/internal/valserve"
)

// TestMain doubles as the entry point for the OS processes the chaos e2e
// spawns: with FEDSHAP_LOADTEST_DAEMON_DIR set the test binary is a
// fedvald-style daemon on a fixed address (so a relaunch after SIGKILL is
// reachable at the same URL), with FEDSHAP_LOADTEST_COORD it is a
// fedvalworker-style worker with a reconnect loop. Both play the additive
// test game U(S) = Σ_{i∈S}(i+1) so no FL training happens in tests.
func TestMain(m *testing.M) {
	if dir := os.Getenv("FEDSHAP_LOADTEST_DAEMON_DIR"); dir != "" {
		runLoadTestDaemon(dir)
		os.Exit(0)
	}
	if coord := os.Getenv("FEDSHAP_LOADTEST_COORD"); coord != "" {
		runLoadTestWorker(coord)
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// additiveGame is the shared synthetic utility: exact, additive, and
// identical between daemon-side and worker-side evaluation, so chaos and
// control runs must agree bit for bit.
func additiveGame(delay time.Duration) utility.EvalFunc {
	return func(s combin.Coalition) float64 {
		if delay > 0 {
			time.Sleep(delay)
		}
		var u float64
		for _, i := range s.Members() {
			u += float64(i + 1)
		}
		return u
	}
}

// additiveBuilder injects the additive game as the daemon's problem
// constructor.
func additiveBuilder(delay time.Duration) func(fedshap.JobRequest) (*experiments.Problem, error) {
	return func(req fedshap.JobRequest) (*experiments.Problem, error) {
		return experiments.NewFuncProblem("loadtest-game", req.N, additiveGame(delay)), nil
	}
}

func envDelay(name string) time.Duration {
	ms, _ := strconv.Atoi(os.Getenv(name))
	return time.Duration(ms) * time.Millisecond
}

// runLoadTestDaemon serves a fedvald-style daemon rooted at dir on the
// fixed FEDSHAP_LOADTEST_API_ADDR, with a coordinator listener on
// FEDSHAP_LOADTEST_WORKER_ADDR when set. FEDSHAP_LOADTEST_FAULT_FILE arms
// the persistence fault switch (with a fast recovery probe);
// FEDSHAP_LOADTEST_TASK_DEADLINE_MS, FEDSHAP_LOADTEST_FLAP_THRESHOLD and
// FEDSHAP_LOADTEST_BENCH_BASE_MS shrink the coordinator's resilience
// timings to test scale. It serves until killed.
func runLoadTestDaemon(dir string) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "loadtest daemon:", err)
		os.Exit(1)
	}
	var coord *evalnet.Coordinator
	if wa := os.Getenv("FEDSHAP_LOADTEST_WORKER_ADDR"); wa != "" {
		wln, err := net.Listen("tcp", wa)
		if err != nil {
			fail(err)
		}
		flapThreshold, _ := strconv.Atoi(os.Getenv("FEDSHAP_LOADTEST_FLAP_THRESHOLD"))
		coord = evalnet.NewCoordinatorWith(evalnet.SchedulerConfig{
			TaskDeadline:  envDelay("FEDSHAP_LOADTEST_TASK_DEADLINE_MS"),
			FlapThreshold: flapThreshold,
			BenchBase:     envDelay("FEDSHAP_LOADTEST_BENCH_BASE_MS"),
		})
		go func() { _ = coord.Serve(wln) }()
	}
	cfg := valserve.Config{
		Workers:      3,
		QueueCap:     256,
		CacheDir:     filepath.Join(dir, "cache"),
		JournalPath:  filepath.Join(dir, "jobs.jsonl"),
		BuildProblem: additiveBuilder(envDelay("FEDSHAP_LOADTEST_GAME_DELAY_MS")),
		Coordinator:  coord,
	}
	if ff := os.Getenv("FEDSHAP_LOADTEST_FAULT_FILE"); ff != "" {
		cfg.Fault = resilience.FileHook(ff)
		cfg.DegradedProbeEvery = 250 * time.Millisecond
	}
	m, err := valserve.NewManager(cfg)
	if err != nil {
		fail(err)
	}
	ln, err := net.Listen("tcp", os.Getenv("FEDSHAP_LOADTEST_API_ADDR"))
	if err != nil {
		fail(err)
	}
	_ = (&http.Server{Handler: valserve.NewHandler(m)}).Serve(ln)
}

// runLoadTestWorker dials the coordinator in a reconnect loop (like
// fedvalworker -retry) so it survives partitions and daemon restarts. It
// runs until killed.
func runLoadTestWorker(coordAddr string) {
	delay := envDelay("FEDSHAP_LOADTEST_GAME_DELAY_MS")
	w := &evalnet.Worker{
		Name:     os.Getenv("FEDSHAP_LOADTEST_WORKER_NAME"),
		Capacity: 2,
		BuildEval: func(evalnet.ProblemSpec) (utility.EvalFunc, error) {
			return additiveGame(delay), nil
		},
	}
	for {
		_ = w.Dial(context.Background(), coordAddr)
		time.Sleep(100 * time.Millisecond)
	}
}

// spawnHelper re-executes the test binary with the given env entries and
// leaves process teardown to the caller (the chaos controller owns kills
// and relaunches).
func spawnHelper(env ...string) (*exec.Cmd, error) {
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), env...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd, nil
}

// freeAddr reserves a loopback port for a spawned process to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// --- unit tests -------------------------------------------------------

func TestGenerateDeterministicAndMixed(t *testing.T) {
	cfg := Config{
		Client: fedshap.NewServiceClient("http://unused"),
		Jobs:   200, Fingerprints: 6, WarmFraction: 0.3, Seed: 42,
		Mix: Mix{Models: []string{"logreg", "mlp"}, Gammas: []int{4, 8}},
	}
	r1, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := r1.Requests(), r2.Requests()
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("generated %d / %d requests, want 200", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("request %d differs between equal-seed runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// The traffic spreads across exactly the configured fingerprint count
	// (with 200 draws over 6 variants, all appear), mixes γ budgets and
	// model types, and contains warm resubmits.
	prints := make(map[string]bool)
	gammas := make(map[int]bool)
	models := make(map[string]bool)
	counts := make(map[string]int)
	for _, req := range a {
		prints[fmt.Sprintf("%s/%d", req.Model, req.Seed)] = true
		gammas[req.Gamma] = true
		models[req.Model] = true
		counts[requestKey(req)]++
	}
	if len(prints) != 6 {
		t.Errorf("traffic covers %d fingerprints, want 6", len(prints))
	}
	if len(gammas) != 2 || len(models) != 2 {
		t.Errorf("mix not exercised: %d gammas, %d models", len(gammas), len(models))
	}
	dupes := 0
	for _, n := range counts {
		dupes += n - 1
	}
	if dupes == 0 {
		t.Error("WarmFraction 0.3 produced no duplicate submissions")
	}
	if len(r1.UniqueRequests()) != len(counts) {
		t.Errorf("UniqueRequests() = %d, want %d", len(r1.UniqueRequests()), len(counts))
	}
}

func TestPercentilesNearestRank(t *testing.T) {
	var sample []time.Duration
	for i := 1; i <= 100; i++ {
		sample = append(sample, time.Duration(i)*time.Millisecond)
	}
	p := percentilesOf(sample)
	if p.Count != 100 {
		t.Errorf("Count = %d", p.Count)
	}
	if p.P50 != 0.050 || p.P95 != 0.095 || p.P99 != 0.099 || p.Max != 0.100 {
		t.Errorf("percentiles = p50 %v p95 %v p99 %v max %v", p.P50, p.P95, p.P99, p.Max)
	}
	if diff := p.Mean - 0.0505; diff < -1e-12 || diff > 1e-12 {
		t.Errorf("mean = %v, want 0.0505", p.Mean)
	}
	if got := percentilesOf(nil); got != (Percentiles{}) {
		t.Errorf("empty sample = %+v, want zero", got)
	}
}

func TestFaultSequenceInterleaves(t *testing.T) {
	check := func(got, want []string) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("sequence %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sequence %v, want %v", got, want)
			}
		}
	}
	check(faultSequence(2, 1, 1, 0, 0, 0), []string{"worker", "partition", "daemon", "worker"})
	check(faultSequence(1, 0, 1, 1, 1, 1), []string{"worker", "daemon", "diskfull", "stall", "flap"})
	if got := faultSequence(0, 0, 0, 0, 0, 0); len(got) != 0 {
		t.Errorf("empty quotas produced %v", got)
	}
}
