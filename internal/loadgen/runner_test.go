package loadgen

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fedshap"
	"fedshap/internal/valserve"
)

// TestRunnerEndToEnd replays a mixed-fingerprint load with warm resubmits
// and an SSE watcher pool against an in-process daemon and checks the
// report's accounting: everything submitted, everything done, latency
// populations complete, warm traffic visible in the cache counters.
func TestRunnerEndToEnd(t *testing.T) {
	m, err := valserve.NewManager(valserve.Config{
		Workers:      3,
		QueueCap:     128,
		CacheDir:     t.TempDir(),
		BuildProblem: additiveBuilder(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := httptest.NewServer(valserve.NewHandler(m))
	defer srv.Close()

	r, err := NewRunner(Config{
		Client:       fedshap.NewServiceClient(srv.URL),
		Jobs:         40,
		Concurrency:  4,
		BatchSize:    4,
		Fingerprints: 4,
		WarmFraction: 0.3,
		Watchers:     3,
		Seed:         7,
		Timeout:      60 * time.Second,
		Mix:          Mix{Gammas: []int{4, 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if rep.Submitted != 40 || rep.Done != 40 || rep.Failed != 0 || rep.Cancelled != 0 {
		t.Errorf("population = submitted %d done %d failed %d cancelled %d, want 40/40/0/0",
			rep.Submitted, rep.Done, rep.Failed, rep.Cancelled)
	}
	if rep.WarmResubmits == 0 {
		t.Error("no warm resubmits generated at WarmFraction 0.3")
	}
	if rep.SubmitLatency.Count != 40 || rep.QueueWait.Count != 40 || rep.JobLatency.Count != 40 {
		t.Errorf("latency populations = %d/%d/%d, want 40 each",
			rep.SubmitLatency.Count, rep.QueueWait.Count, rep.JobLatency.Count)
	}
	if rep.JobLatency.P50 <= 0 || rep.JobLatency.P99 < rep.JobLatency.P50 {
		t.Errorf("job latency percentiles inconsistent: %+v", rep.JobLatency)
	}
	if rep.Throughput <= 0 || rep.WallSeconds <= 0 {
		t.Errorf("throughput %v over %vs", rep.Throughput, rep.WallSeconds)
	}
	if rep.FreshEvals == 0 {
		t.Error("no fresh evaluations counted")
	}
	if rep.WarmedCoalitions == 0 {
		t.Error("warm resubmits warmed nothing — store not exercised")
	}
	if rep.Watchers.Events == 0 || rep.Watchers.Jobs == 0 {
		t.Errorf("watcher pool saw nothing: %+v", rep.Watchers)
	}
	if rep.Metrics == nil {
		t.Error("no final /metrics snapshot")
	}
	if len(r.FinalStatuses()) != 40 {
		t.Errorf("FinalStatuses() has %d entries, want 40", len(r.FinalStatuses()))
	}

	// A verbatim rerun of the distinct requests is fully warm: the store
	// holds every coalition, so zero fresh evaluations remain.
	client := fedshap.NewServiceClient(srv.URL)
	for _, req := range r.UniqueRequests() {
		st, err := client.Submit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		final, err := client.Wait(context.Background(), st.ID, 5*time.Millisecond, nil)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != fedshap.JobDone || final.FreshEvals != 0 {
			t.Errorf("replayed job %s: state %s, %d fresh evals, want done/0", st.ID, final.State, final.FreshEvals)
		}
	}
}

// TestRunnerBenchLines checks the bench.sh line format contract: one
// comma-terminated JSON object per line except the last, parseable by the
// awk pipeline in scripts/bench_diff.sh.
func TestRunnerBenchLines(t *testing.T) {
	rep := &Report{
		Done:          10,
		Throughput:    20,
		SubmitLatency: Percentiles{P50: 0.001, P95: 0.002},
		QueueWait:     Percentiles{P50: 0.01, P95: 0.02, P99: 0.03},
		JobLatency:    Percentiles{P50: 0.1, P95: 0.2, P99: 0.3},
	}
	var buf strings.Builder
	if err := rep.WriteBenchLines(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 9 {
		t.Fatalf("wrote %d lines, want 9:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		wantComma := i < len(lines)-1
		if strings.HasSuffix(line, ",") != wantComma {
			t.Errorf("line %d comma wrong: %q", i, line)
		}
		var obj struct {
			Name    string   `json:"name"`
			Iters   int      `json:"iters"`
			NsPerOp *float64 `json:"ns_per_op"`
		}
		if err := json.Unmarshal([]byte(strings.TrimSuffix(line, ",")), &obj); err != nil {
			t.Errorf("line %d not a JSON object: %q (%v)", i, line, err)
		} else if obj.Name == "" || obj.NsPerOp == nil || obj.Iters != 10 {
			t.Errorf("line %d fields wrong: %q", i, line)
		}
	}
}
