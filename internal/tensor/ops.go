package tensor

import "math"

// Softmax writes the softmax of src into dst (may alias src) using the
// max-subtraction trick for numerical stability, and returns dst.
func Softmax(src, dst Vector) Vector {
	if dst == nil {
		dst = NewVector(len(src))
	}
	if len(src) == 0 {
		return dst
	}
	maxv := src[0]
	for _, x := range src[1:] {
		if x > maxv {
			maxv = x
		}
	}
	var sum float64
	for i, x := range src {
		e := math.Exp(x - maxv)
		dst[i] = e
		sum += e
	}
	inv := 1.0 / sum
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// Sigmoid returns 1/(1+e^{-x}) computed stably for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1.0 / (1.0 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1.0 + e)
}

// ReLU returns max(0, x).
func ReLU(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// CrossEntropy returns -log(p[label]) with probability clamping to avoid
// infinities from zero probabilities.
func CrossEntropy(probs Vector, label int) float64 {
	p := probs[label]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}

// LogisticLoss returns the binary cross-entropy for a logit z and label
// y ∈ {0,1}, computed from the logit directly for stability.
func LogisticLoss(z float64, y float64) float64 {
	// log(1+e^{-|z|}) + max(z,0) - z*y
	return math.Log1p(math.Exp(-math.Abs(z))) + math.Max(z, 0) - z*y
}

// Clip limits x to [-bound, bound].
func Clip(x, bound float64) float64 {
	if x > bound {
		return bound
	}
	if x < -bound {
		return -bound
	}
	return x
}
