// Package tensor implements the dense linear algebra needed by the model
// substrate: float64 vectors and row-major matrices with the handful of
// BLAS-like kernels (matmul, rank-1 update, axpy) that neural-network
// training requires, plus deterministic random initialisation.
//
// The package is deliberately small: valuation cost is dominated by how many
// models are trained, not by peak FLOPS, so clarity wins over vectorisation
// tricks.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector allocates a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product v·w.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Dot dimension mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// AddScaled performs v += alpha * w (axpy).
func (v Vector) AddScaled(alpha float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: AddScaled dimension mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale performs v *= alpha.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Fill sets every element to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// ArgMax returns the index of the largest element (first on ties), or -1 for
// an empty vector.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] > best {
			best, bi = v[i], i
		}
	}
	return bi
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes dst = M * v, allocating dst when nil.
func (m *Matrix) MulVec(v Vector, dst Vector) Vector {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVec dimension mismatch: cols=%d len(v)=%d", m.Cols, len(v)))
	}
	if dst == nil {
		dst = NewVector(m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		dst[i] = s
	}
	return dst
}

// MulVecT computes dst = Mᵀ * v, allocating dst when nil.
func (m *Matrix) MulVecT(v Vector, dst Vector) Vector {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVecT dimension mismatch: rows=%d len(v)=%d", m.Rows, len(v)))
	}
	if dst == nil {
		dst = NewVector(m.Cols)
	} else {
		dst.Fill(0)
	}
	for i := 0; i < m.Rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			dst[j] += x * vi
		}
	}
	return dst
}

// AddOuterScaled performs M += alpha * u * vᵀ (rank-1 update).
func (m *Matrix) AddOuterScaled(alpha float64, u, v Vector) {
	if len(u) != m.Rows || len(v) != m.Cols {
		panic("tensor: AddOuterScaled dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		au := alpha * u[i]
		if au == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range v {
			row[j] += au * x
		}
	}
}

// AddScaled performs M += alpha * W elementwise.
func (m *Matrix) AddScaled(alpha float64, w *Matrix) {
	if m.Rows != w.Rows || m.Cols != w.Cols {
		panic("tensor: AddScaled matrix shape mismatch")
	}
	for i, x := range w.Data {
		m.Data[i] += alpha * x
	}
}

// Scale performs M *= alpha elementwise.
func (m *Matrix) Scale(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// XavierInit fills the matrix with Uniform(-a, a), a = sqrt(6/(fanIn+fanOut)),
// the Glorot/Xavier scheme that keeps activations well-scaled at init.
func (m *Matrix) XavierInit(rng *rand.Rand) {
	a := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * a
	}
}

// GaussianInit fills the matrix with N(0, std²).
func (m *Matrix) GaussianInit(std float64, rng *rand.Rand) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}
