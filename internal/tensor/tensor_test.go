package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestVectorAddScaled(t *testing.T) {
	v := Vector{1, 2}
	v.AddScaled(2, Vector{10, 20})
	if v[0] != 21 || v[1] != 42 {
		t.Errorf("AddScaled gave %v", v)
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Errorf("Clone aliases original")
	}
}

func TestVectorNorm2(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
}

func TestArgMax(t *testing.T) {
	if got := (Vector{0.1, 0.9, 0.3}).ArgMax(); got != 1 {
		t.Errorf("ArgMax = %d, want 1", got)
	}
	if got := (Vector{}).ArgMax(); got != -1 {
		t.Errorf("ArgMax(empty) = %d, want -1", got)
	}
	// First index wins ties.
	if got := (Vector{0.5, 0.5}).ArgMax(); got != 0 {
		t.Errorf("ArgMax tie = %d, want 0", got)
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec(Vector{1, 1, 1}, nil)
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestMatrixMulVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVecT(Vector{1, 1}, nil)
	want := Vector{5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MulVecT = %v, want %v", got, want)
			break
		}
	}
}

// Mᵀ(Mv) dotted with v equals ‖Mv‖² — an algebraic identity tying MulVec
// and MulVecT together.
func TestMulVecAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(6)
		m := NewMatrix(rows, cols)
		m.GaussianInit(1, rng)
		v := NewVector(cols)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		mv := m.MulVec(v, nil)
		mtmv := m.MulVecT(mv, nil)
		lhs := mtmv.Dot(v)
		rhs := mv.Dot(mv)
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddOuterScaled(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuterScaled(2, Vector{1, 2}, Vector{3, 4})
	want := []float64{6, 8, 12, 16}
	for i, w := range want {
		if m.Data[i] != w {
			t.Errorf("AddOuterScaled = %v, want %v", m.Data, want)
			break
		}
	}
}

func TestMatrixRowAliases(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Errorf("Row should alias matrix storage")
	}
}

func TestSoftmax(t *testing.T) {
	out := Softmax(Vector{1, 2, 3}, nil)
	var sum float64
	for _, p := range out {
		if p <= 0 || p >= 1 {
			t.Errorf("softmax element %v out of (0,1)", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sums to %v", sum)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Errorf("softmax should be monotone in logits: %v", out)
	}
}

func TestSoftmaxStability(t *testing.T) {
	out := Softmax(Vector{1000, 1001, 999}, nil)
	var sum float64
	for _, p := range out {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("softmax overflowed: %v", out)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax(large) sums to %v", sum)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	f := func(a, b, c float64, shift float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 50)
		}
		a, b, c, shift = clamp(a), clamp(b), clamp(c), clamp(shift)
		p := Softmax(Vector{a, b, c}, nil)
		q := Softmax(Vector{a + shift, b + shift, c + shift}, nil)
		for i := range p {
			if math.Abs(p[i]-q[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(100); got < 0.999 {
		t.Errorf("Sigmoid(100) = %v", got)
	}
	if got := Sigmoid(-100); got > 0.001 {
		t.Errorf("Sigmoid(-100) = %v", got)
	}
	// Symmetry σ(-x) = 1-σ(x).
	for _, x := range []float64{0.5, 1, 3, 10} {
		if math.Abs(Sigmoid(-x)-(1-Sigmoid(x))) > 1e-12 {
			t.Errorf("sigmoid symmetry violated at %v", x)
		}
	}
}

func TestReLU(t *testing.T) {
	if ReLU(-1) != 0 || ReLU(2) != 2 || ReLU(0) != 0 {
		t.Errorf("ReLU misbehaves")
	}
}

func TestCrossEntropy(t *testing.T) {
	ce := CrossEntropy(Vector{0.25, 0.75}, 1)
	if math.Abs(ce+math.Log(0.75)) > 1e-12 {
		t.Errorf("CrossEntropy = %v", ce)
	}
	// Zero probability must not produce +Inf.
	if v := CrossEntropy(Vector{1, 0}, 1); math.IsInf(v, 0) {
		t.Errorf("CrossEntropy(0) = Inf")
	}
}

func TestLogisticLossMatchesNaive(t *testing.T) {
	for _, z := range []float64{-5, -1, 0, 1, 5} {
		for _, y := range []float64{0, 1} {
			p := Sigmoid(z)
			naive := -(y*math.Log(p) + (1-y)*math.Log(1-p))
			if got := LogisticLoss(z, y); math.Abs(got-naive) > 1e-9 {
				t.Errorf("LogisticLoss(%v,%v) = %v, want %v", z, y, got, naive)
			}
		}
	}
}

func TestClip(t *testing.T) {
	if Clip(5, 2) != 2 || Clip(-5, 2) != -2 || Clip(1, 2) != 1 {
		t.Errorf("Clip misbehaves")
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(10, 20)
	m.XavierInit(rng)
	bound := math.Sqrt(6.0 / 30.0)
	for _, x := range m.Data {
		if x < -bound || x > bound {
			t.Fatalf("Xavier value %v outside ±%v", x, bound)
		}
	}
	// Not all zero.
	var s float64
	for _, x := range m.Data {
		s += math.Abs(x)
	}
	if s == 0 {
		t.Errorf("Xavier init produced all zeros")
	}
}

func TestVectorScaleFill(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Scale(2)
	if v[0] != 2 || v[2] != 6 {
		t.Errorf("Scale gave %v", v)
	}
	v.Fill(7)
	for _, x := range v {
		if x != 7 {
			t.Errorf("Fill gave %v", v)
		}
	}
}

func TestMatrixCloneAndScale(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 3)
	c := m.Clone()
	c.Scale(2)
	if m.At(0, 1) != 3 || c.At(0, 1) != 6 {
		t.Errorf("Clone/Scale broken: %v vs %v", m.At(0, 1), c.At(0, 1))
	}
}

func TestMatrixAddScaled(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 2)
	b.Set(1, 1, 4)
	a.AddScaled(0.5, b)
	if a.At(1, 1) != 2 {
		t.Errorf("AddScaled gave %v", a.At(1, 1))
	}
}

func TestMatrixGaussianInit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMatrix(20, 20)
	m.GaussianInit(0.5, rng)
	var mean, varsum float64
	for _, x := range m.Data {
		mean += x
	}
	mean /= float64(len(m.Data))
	for _, x := range m.Data {
		varsum += (x - mean) * (x - mean)
	}
	std := math.Sqrt(varsum / float64(len(m.Data)))
	if math.Abs(mean) > 0.1 || math.Abs(std-0.5) > 0.1 {
		t.Errorf("Gaussian init mean %v std %v", mean, std)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	check := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	v2, v3 := Vector{1, 2}, Vector{1, 2, 3}
	m := NewMatrix(2, 3)
	check("Dot", func() { v2.Dot(v3) })
	check("AddScaled", func() { v2.AddScaled(1, v3) })
	check("MulVec", func() { m.MulVec(v2, nil) })
	check("MulVecT", func() { m.MulVecT(v3, nil) })
	check("AddOuterScaled", func() { m.AddOuterScaled(1, v3, v3) })
	check("Matrix.AddScaled", func() { m.AddScaled(1, NewMatrix(3, 2)) })
	check("NewMatrix(-1,2)", func() { NewMatrix(-1, 2) })
}

func TestMulVecTZeroSkip(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	// Zero weight on row 0 exercises the skip path.
	got := m.MulVecT(Vector{0, 1}, nil)
	if got[0] != 3 || got[1] != 4 {
		t.Errorf("MulVecT = %v", got)
	}
}

func TestAddOuterScaledZeroSkip(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuterScaled(1, Vector{0, 1}, Vector{5, 6})
	if m.At(0, 0) != 0 || m.At(1, 0) != 5 || m.At(1, 1) != 6 {
		t.Errorf("AddOuterScaled = %v", m.Data)
	}
}
