package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// CSV ingestion so real tabular data can be valued from the CLI: one row
// per sample, numeric feature columns, and the class label in the last
// column (integer in [0, numClasses)). A header row is auto-detected (any
// non-numeric first row is skipped).

// ReadCSV parses a dataset from CSV. numClasses 0 infers the class count
// as max(label)+1.
func ReadCSV(name string, r io.Reader, numClasses int) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate ourselves for a better message
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: csv: no rows")
	}
	// Header detection: first row with any unparsable cell is a header.
	start := 0
	if !allNumeric(records[0]) {
		start = 1
	}
	rows := records[start:]
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: csv: header only, no data rows")
	}
	width := len(rows[0])
	if width < 2 {
		return nil, fmt.Errorf("dataset: csv: need at least one feature and a label column")
	}
	dim := width - 1

	d := New(name, len(rows), dim, numClasses)
	maxLabel := 0
	for i, rec := range rows {
		if len(rec) != width {
			return nil, fmt.Errorf("dataset: csv row %d has %d fields, want %d", start+i+1, len(rec), width)
		}
		row := d.X.Row(i)
		for j := 0; j < dim; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv row %d col %d: %w", start+i+1, j+1, err)
			}
			row[j] = v
		}
		label, err := strconv.Atoi(rec[dim])
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d label: %w", start+i+1, err)
		}
		if label < 0 {
			return nil, fmt.Errorf("dataset: csv row %d: negative label %d", start+i+1, label)
		}
		d.Y[i] = label
		if label > maxLabel {
			maxLabel = label
		}
	}
	if numClasses == 0 {
		d.NumClasses = maxLabel + 1
	} else if maxLabel >= numClasses {
		return nil, fmt.Errorf("dataset: csv label %d outside %d classes", maxLabel, numClasses)
	}
	return d, nil
}

// LoadCSV reads a dataset from a CSV file.
func LoadCSV(path string, numClasses int) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: csv: %w", err)
	}
	defer f.Close()
	return ReadCSV(path, f, numClasses)
}

// WriteCSV emits the dataset in the same format ReadCSV accepts.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rec := make([]string, d.Dim()+1)
	for i := 0; i < d.Len(); i++ {
		row := d.X.Row(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[d.Dim()] = strconv.Itoa(d.Y[i])
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: csv write: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func allNumeric(rec []string) bool {
	for _, cell := range rec {
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			return false
		}
	}
	return true
}
