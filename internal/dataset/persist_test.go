package dataset

import (
	"bytes"
	"testing"
)

func TestDatasetWriteReadRoundTrip(t *testing.T) {
	d := SynthImages(DefaultSynthImages(40, 3))
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Name || back.Len() != d.Len() || back.Dim() != d.Dim() {
		t.Fatalf("metadata lost: %q %dx%d", back.Name, back.Len(), back.Dim())
	}
	if back.NumClasses != d.NumClasses || back.ImageW != d.ImageW || back.ImageH != d.ImageH {
		t.Errorf("schema lost")
	}
	for i := range d.X.Data {
		if back.X.Data[i] != d.X.Data[i] {
			t.Fatalf("pixel %d lost", i)
		}
	}
	for i := range d.Y {
		if back.Y[i] != d.Y[i] {
			t.Fatalf("label %d lost", i)
		}
	}
}

func TestDatasetSaveLoadFile(t *testing.T) {
	d := SynthImages(DefaultSynthImages(20, 5))
	path := t.TempDir() + "/d.gob"
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 20 {
		t.Errorf("len = %d", back.Len())
	}
}

func TestDatasetReadRejectsCorrupt(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Errorf("garbage accepted")
	}
	// Inconsistent payload: declare 5 rows but ship 1 label.
	var buf bytes.Buffer
	d := New("bad", 2, 2, 2)
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-stream.
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Errorf("truncated stream accepted")
	}
}

func TestEmptyDatasetRoundTrip(t *testing.T) {
	d := New("empty", 0, 4, 3)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 || back.Dim() != 4 || back.NumClasses != 3 {
		t.Errorf("empty round trip lost schema: %d %d %d", back.Len(), back.Dim(), back.NumClasses)
	}
}
