// Package dataset provides the data substrate for federated valuation:
// an in-memory labelled dataset type, synthetic generators standing in for
// the paper's benchmark corpora (MNIST, FEMNIST, Adult, Sent-140 — see
// DESIGN.md §1 for the substitution rationale), the five federated
// partitioning setups of the paper's Fig. 6, and the label/feature noise
// injectors used in setups (d) and (e).
package dataset

import (
	"fmt"
	"math/rand"

	"fedshap/internal/tensor"
)

// Dataset is an in-memory supervised dataset: a row-major feature matrix and
// integer class labels. Image datasets additionally carry their spatial
// shape so convolutional models can interpret rows as W×H grids.
type Dataset struct {
	// Name identifies the dataset (for logs and experiment reports).
	Name string
	// X holds one sample per row.
	X *tensor.Matrix
	// Y holds the class label of each row; len(Y) == X.Rows.
	Y []int
	// NumClasses is the number of distinct classes the task defines (labels
	// are in [0, NumClasses)). It is task-level metadata: a partition may
	// contain fewer observed classes.
	NumClasses int
	// ImageW, ImageH give the spatial shape for image data (0 for tabular).
	ImageW, ImageH int
}

// New allocates an empty dataset with capacity for n samples of d features.
func New(name string, n, d, numClasses int) *Dataset {
	return &Dataset{
		Name:       name,
		X:          tensor.NewMatrix(n, d),
		Y:          make([]int, n),
		NumClasses: numClasses,
	}
}

// Len returns the number of samples.
func (d *Dataset) Len() int {
	if d == nil || d.X == nil {
		return 0
	}
	return d.X.Rows
}

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int {
	if d == nil || d.X == nil {
		return 0
	}
	return d.X.Cols
}

// IsEmpty reports whether the dataset holds no samples (a "free rider" in
// valuation experiments).
func (d *Dataset) IsEmpty() bool { return d.Len() == 0 }

// Clone returns a deep copy, used to model duplicate data providers in the
// symmetric-fairness experiments (Fig. 9).
func (d *Dataset) Clone() *Dataset {
	out := New(d.Name, d.Len(), d.Dim(), d.NumClasses)
	copy(out.X.Data, d.X.Data)
	copy(out.Y, d.Y)
	out.ImageW, out.ImageH = d.ImageW, d.ImageH
	return out
}

// Empty returns a zero-sample dataset with the same schema as d.
func (d *Dataset) Empty(name string) *Dataset {
	out := New(name, 0, d.Dim(), d.NumClasses)
	out.ImageW, out.ImageH = d.ImageW, d.ImageH
	return out
}

// Subset returns the dataset restricted to the given row indices.
func (d *Dataset) Subset(name string, idx []int) *Dataset {
	out := New(name, len(idx), d.Dim(), d.NumClasses)
	out.ImageW, out.ImageH = d.ImageW, d.ImageH
	for r, i := range idx {
		copy(out.X.Row(r), d.X.Row(i))
		out.Y[r] = d.Y[i]
	}
	return out
}

// Merge concatenates datasets into a single training pool; it is how a
// coalition's combined dataset D_S = ∪_{i∈S} D_i is materialised. Empty
// inputs contribute nothing. Merge panics on schema mismatch.
func Merge(name string, parts ...*Dataset) *Dataset {
	total, dim, classes, w, h := 0, -1, 0, 0, 0
	for _, p := range parts {
		if p == nil || p.Len() == 0 {
			if p != nil && dim < 0 && p.Dim() > 0 {
				dim, classes, w, h = p.Dim(), p.NumClasses, p.ImageW, p.ImageH
			}
			continue
		}
		if dim < 0 {
			dim, classes, w, h = p.Dim(), p.NumClasses, p.ImageW, p.ImageH
		} else if p.Dim() != dim {
			panic(fmt.Sprintf("dataset: Merge dimension mismatch %d vs %d", p.Dim(), dim))
		}
		total += p.Len()
	}
	if dim < 0 {
		dim = 0
	}
	out := New(name, total, dim, classes)
	out.ImageW, out.ImageH = w, h
	r := 0
	for _, p := range parts {
		if p == nil {
			continue
		}
		for i := 0; i < p.Len(); i++ {
			copy(out.X.Row(r), p.X.Row(i))
			out.Y[r] = p.Y[i]
			r++
		}
	}
	return out
}

// Shuffle permutes samples in place.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	n := d.Len()
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		swapRows(d.X, i, j)
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	}
}

func swapRows(m *tensor.Matrix, i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

// Split divides the dataset into a training and test portion; trainFrac is
// clamped to [0,1]. The split is deterministic given the RNG.
func (d *Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test *Dataset) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	n := d.Len()
	perm := rng.Perm(n)
	cut := int(float64(n) * trainFrac)
	return d.Subset(d.Name+"/train", perm[:cut]), d.Subset(d.Name+"/test", perm[cut:])
}

// ClassCounts returns the number of samples per class label.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, y := range d.Y {
		if y >= 0 && y < d.NumClasses {
			counts[y]++
		}
	}
	return counts
}
