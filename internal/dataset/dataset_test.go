package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMergeAndSubset(t *testing.T) {
	a := New("a", 2, 3, 2)
	a.X.Set(0, 0, 1)
	a.Y[0] = 1
	b := New("b", 3, 3, 2)
	b.X.Set(2, 2, 5)
	merged := Merge("ab", a, b)
	if merged.Len() != 5 {
		t.Fatalf("merged len = %d, want 5", merged.Len())
	}
	if merged.X.At(0, 0) != 1 || merged.Y[0] != 1 {
		t.Errorf("first rows not preserved")
	}
	if merged.X.At(4, 2) != 5 {
		t.Errorf("b's rows not preserved")
	}
}

func TestMergeWithEmpty(t *testing.T) {
	a := New("a", 2, 3, 2)
	e := a.Empty("rider")
	merged := Merge("m", e, a, e)
	if merged.Len() != 2 {
		t.Errorf("merge with empty len = %d, want 2", merged.Len())
	}
	if merged.Dim() != 3 {
		t.Errorf("merge with empty dim = %d, want 3", merged.Dim())
	}
}

func TestMergeAllEmpty(t *testing.T) {
	a := New("a", 0, 3, 2)
	merged := Merge("m", a, a)
	if merged.Len() != 0 || merged.Dim() != 3 {
		t.Errorf("all-empty merge gave len=%d dim=%d", merged.Len(), merged.Dim())
	}
}

func TestMergeDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Merge with mismatched dims should panic")
		}
	}()
	Merge("bad", New("a", 1, 3, 2), New("b", 1, 4, 2))
}

func TestCloneIndependence(t *testing.T) {
	a := New("a", 2, 2, 2)
	a.X.Set(0, 0, 1)
	c := a.Clone()
	c.X.Set(0, 0, 9)
	c.Y[0] = 1
	if a.X.At(0, 0) != 1 || a.Y[0] != 0 {
		t.Errorf("Clone aliases original")
	}
}

func TestSplit(t *testing.T) {
	d := New("d", 100, 2, 2)
	rng := rand.New(rand.NewSource(1))
	train, test := d.Split(0.8, rng)
	if train.Len() != 80 || test.Len() != 20 {
		t.Errorf("split sizes %d/%d, want 80/20", train.Len(), test.Len())
	}
}

func TestSynthImagesShape(t *testing.T) {
	d := SynthImages(DefaultSynthImages(100, 1))
	if d.Len() != 100 {
		t.Errorf("len = %d", d.Len())
	}
	if d.Dim() != 100 {
		t.Errorf("dim = %d, want 100 (10x10)", d.Dim())
	}
	if d.ImageW != 10 || d.ImageH != 10 {
		t.Errorf("image shape %dx%d", d.ImageW, d.ImageH)
	}
	for _, y := range d.Y {
		if y < 0 || y >= 10 {
			t.Fatalf("label %d out of range", y)
		}
	}
}

func TestSynthImagesDeterminism(t *testing.T) {
	a := SynthImages(DefaultSynthImages(50, 42))
	b := SynthImages(DefaultSynthImages(50, 42))
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatalf("same seed produced different data")
		}
	}
	c := SynthImages(DefaultSynthImages(50, 43))
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical data")
	}
}

func TestFEMNISTLike(t *testing.T) {
	cfg := DefaultFEMNISTLike(5, 40, 7)
	clients, test := FEMNISTLike(cfg)
	if len(clients) != 5 {
		t.Fatalf("clients = %d", len(clients))
	}
	for _, c := range clients {
		if c.Len() != 40 {
			t.Errorf("client len = %d, want 40", c.Len())
		}
		if c.Dim() != 100 {
			t.Errorf("client dim = %d", c.Dim())
		}
	}
	if test.Len() != cfg.TestSamples {
		t.Errorf("test len = %d, want %d", test.Len(), cfg.TestSamples)
	}
	// Writers must differ (style shifts): mean pixel of writer 0 vs 1.
	m0 := meanPixel(clients[0])
	m1 := meanPixel(clients[1])
	if m0 == m1 {
		t.Errorf("writers are pixel-identical; style shift missing")
	}
}

func meanPixel(d *Dataset) float64 {
	var s float64
	for _, x := range d.X.Data {
		s += x
	}
	return s / float64(len(d.X.Data))
}

func TestAdultLike(t *testing.T) {
	d, occ := AdultLike(DefaultAdultLike(500, 3))
	if d.Len() != 500 || len(occ) != 500 {
		t.Fatalf("sizes %d/%d", d.Len(), len(occ))
	}
	if d.NumClasses != 2 {
		t.Errorf("classes = %d, want 2", d.NumClasses)
	}
	// Occupation one-hot set consistently.
	for i := 0; i < d.Len(); i++ {
		if d.X.At(i, adultNumericFeatures+occ[i]) != 1 {
			t.Fatalf("row %d one-hot mismatch", i)
		}
	}
	// Both classes present.
	counts := d.ClassCounts()
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("degenerate class balance %v", counts)
	}
}

func TestPartitionByKey(t *testing.T) {
	d, occ := AdultLike(DefaultAdultLike(400, 5))
	parts := PartitionByKey(d, occ, 4)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != d.Len() {
		t.Errorf("partition loses rows: %d of %d", total, d.Len())
	}
}

func TestSent140Like(t *testing.T) {
	d := Sent140Like(Sent140LikeConfig{Samples: 200, Vocab: 30, AvgLen: 8, Seed: 1})
	if d.Len() != 200 || d.Dim() != 30 {
		t.Fatalf("shape %dx%d", d.Len(), d.Dim())
	}
	// Counts are non-negative integers-ish.
	for _, x := range d.X.Data {
		if x < 0 {
			t.Fatalf("negative count %v", x)
		}
	}
}

func TestPartitionEqualIID(t *testing.T) {
	d := SynthImages(DefaultSynthImages(100, 1))
	rng := rand.New(rand.NewSource(2))
	parts := PartitionEqualIID(d, 4, rng)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	for _, p := range parts {
		if p.Len() != 25 {
			t.Errorf("IID part len = %d, want 25", p.Len())
		}
	}
	assertPartitionDisjointCover(t, d, parts)
}

func TestPartitionLabelSkew(t *testing.T) {
	d := SynthImages(DefaultSynthImages(400, 1))
	rng := rand.New(rand.NewSource(2))
	parts := PartitionLabelSkew(d, 4, 0.7, rng)
	total := 0
	for c, p := range parts {
		total += p.Len()
		// The client's "own" labels (≡ c mod numClasses stride) should
		// dominate: compute the share of the majority label.
		counts := p.ClassCounts()
		maxCount := 0
		for _, cc := range counts {
			if cc > maxCount {
				maxCount = cc
			}
		}
		if p.Len() > 0 && float64(maxCount)/float64(p.Len()) < 0.15 {
			t.Errorf("client %d shows no skew: %v", c, counts)
		}
	}
	if total > d.Len() {
		t.Errorf("skew partition oversubscribed: %d > %d", total, d.Len())
	}
}

func TestPartitionBySizeRatio(t *testing.T) {
	d := SynthImages(DefaultSynthImages(100, 1))
	rng := rand.New(rand.NewSource(2))
	parts := PartitionBySizeRatio(d, 4, rng)
	// Ratios 1:2:3:4 of 100 → 10,20,30,40.
	want := []int{10, 20, 30, 40}
	for i, p := range parts {
		if p.Len() != want[i] {
			t.Errorf("part %d len = %d, want %d", i, p.Len(), want[i])
		}
	}
	assertPartitionDisjointCover(t, d, parts)
}

func TestAddLabelNoise(t *testing.T) {
	d := SynthImages(DefaultSynthImages(1000, 1))
	orig := append([]int(nil), d.Y...)
	rng := rand.New(rand.NewSource(3))
	flipped := AddLabelNoise(d, 0.2, rng)
	if flipped < 100 || flipped > 300 {
		t.Errorf("flipped = %d, want ≈200", flipped)
	}
	changed := 0
	for i := range d.Y {
		if d.Y[i] != orig[i] {
			changed++
			if d.Y[i] < 0 || d.Y[i] >= d.NumClasses {
				t.Fatalf("noise produced out-of-range label %d", d.Y[i])
			}
		}
	}
	if changed != flipped {
		t.Errorf("changed %d != reported %d", changed, flipped)
	}
}

func TestAddLabelNoiseZero(t *testing.T) {
	d := SynthImages(DefaultSynthImages(100, 1))
	orig := append([]int(nil), d.Y...)
	if n := AddLabelNoise(d, 0, rand.New(rand.NewSource(1))); n != 0 {
		t.Errorf("zero-fraction noise flipped %d labels", n)
	}
	for i := range d.Y {
		if d.Y[i] != orig[i] {
			t.Fatalf("zero-fraction noise changed labels")
		}
	}
}

func TestAddFeatureNoise(t *testing.T) {
	d := SynthImages(DefaultSynthImages(50, 1))
	orig := append([]float64(nil), d.X.Data...)
	AddFeatureNoise(d, 0.1, rand.New(rand.NewSource(4)))
	diff := 0
	for i := range d.X.Data {
		if d.X.Data[i] != orig[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Errorf("feature noise changed nothing")
	}
	// Zero scale is a no-op.
	before := append([]float64(nil), d.X.Data...)
	AddFeatureNoise(d, 0, rand.New(rand.NewSource(5)))
	for i := range d.X.Data {
		if d.X.Data[i] != before[i] {
			t.Fatalf("zero-scale noise changed features")
		}
	}
}

func TestClassCounts(t *testing.T) {
	d := New("d", 4, 1, 3)
	d.Y = []int{0, 1, 1, 2}
	counts := d.ClassCounts()
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

// Partition invariants hold for arbitrary sizes and client counts.
func TestPartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw, szRaw uint8) bool {
		n := int(nRaw%6) + 1
		size := int(szRaw%100) + n // at least one sample per client
		cfg := DefaultSynthImages(size, seed)
		d := SynthImages(cfg)
		rng := rand.New(rand.NewSource(seed))
		parts := PartitionEqualIID(d, n, rng)
		total := 0
		for _, p := range parts {
			total += p.Len()
		}
		return total == d.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func assertPartitionDisjointCover(t *testing.T, d *Dataset, parts []*Dataset) {
	t.Helper()
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != d.Len() {
		t.Errorf("partition covers %d of %d rows", total, d.Len())
	}
}
