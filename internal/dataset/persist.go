package dataset

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"fedshap/internal/tensor"
)

// Dataset persistence via gob, so federated partitions used in a valuation
// can be archived alongside the value report for auditability.

// datasetFile is the gob wire form.
type datasetFile struct {
	Name       string
	Rows, Cols int
	Data       []float64
	Y          []int
	NumClasses int
	ImageW     int
	ImageH     int
	Version    int
}

const datasetVersion = 1

// Write serialises the dataset to w.
func (d *Dataset) Write(w io.Writer) error {
	return gob.NewEncoder(w).Encode(datasetFile{
		Name: d.Name,
		Rows: d.Len(), Cols: d.Dim(),
		Data:       d.X.Data,
		Y:          d.Y,
		NumClasses: d.NumClasses,
		ImageW:     d.ImageW, ImageH: d.ImageH,
		Version: datasetVersion,
	})
}

// Read parses a dataset previously serialised with Write.
func Read(r io.Reader) (*Dataset, error) {
	var f datasetFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	if f.Version != datasetVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", f.Version)
	}
	if len(f.Data) != f.Rows*f.Cols || len(f.Y) != f.Rows {
		return nil, fmt.Errorf("dataset: corrupt payload: %d data for %dx%d, %d labels",
			len(f.Data), f.Rows, f.Cols, len(f.Y))
	}
	d := &Dataset{
		Name:       f.Name,
		X:          &tensor.Matrix{Rows: f.Rows, Cols: f.Cols, Data: f.Data},
		Y:          f.Y,
		NumClasses: f.NumClasses,
		ImageW:     f.ImageW,
		ImageH:     f.ImageH,
	}
	return d, nil
}

// Save writes the dataset to a file. The close error is checked — Close
// flushes, so dropping it could report success on a truncated file.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	err = d.Write(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("dataset: save: %w", cerr)
	}
	return err
}

// Load reads a dataset from a file.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	defer f.Close()
	return Read(f)
}
