package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"fedshap/internal/tensor"
)

// SynthImagesConfig parameterises the MNIST-stand-in generator.
type SynthImagesConfig struct {
	Samples    int // total samples to draw
	Classes    int // number of digit classes
	Width      int // image width in pixels
	Height     int // image height in pixels
	NoiseStd   float64
	Seed       int64
	Sharpness  float64 // prototype contrast; higher = easier task
	ProtoCells int     // active cells per class prototype (0 = auto)
}

// DefaultSynthImages returns the configuration used by the synthetic-MNIST
// experiments (Fig. 6): 10 classes of 10×10 images, mildly noisy.
func DefaultSynthImages(samples int, seed int64) SynthImagesConfig {
	return SynthImagesConfig{
		Samples:   samples,
		Classes:   10,
		Width:     10,
		Height:    10,
		NoiseStd:  0.35,
		Seed:      seed,
		Sharpness: 1.0,
	}
}

// SynthImages generates an MNIST-like dataset: each class has a fixed random
// prototype pattern (a sparse set of bright cells, loosely mimicking stroke
// structure) and samples are the prototype plus Gaussian pixel noise. The
// task has the properties valuation cares about — learnable class structure
// and diminishing returns in sample count — without needing the real corpus.
func SynthImages(cfg SynthImagesConfig) *Dataset {
	if cfg.Classes <= 0 || cfg.Width <= 0 || cfg.Height <= 0 {
		panic("dataset: SynthImages requires positive classes and shape")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dim := cfg.Width * cfg.Height
	protos := classPrototypes(cfg, rng)

	d := New(fmt.Sprintf("synth-images(c=%d)", cfg.Classes), cfg.Samples, dim, cfg.Classes)
	d.ImageW, d.ImageH = cfg.Width, cfg.Height
	for i := 0; i < cfg.Samples; i++ {
		y := rng.Intn(cfg.Classes)
		row := d.X.Row(i)
		proto := protos[y]
		for j := 0; j < dim; j++ {
			row[j] = proto[j] + rng.NormFloat64()*cfg.NoiseStd
		}
		d.Y[i] = y
	}
	return d
}

// classPrototypes builds one sparse bright-cell pattern per class.
func classPrototypes(cfg SynthImagesConfig, rng *rand.Rand) []tensor.Vector {
	dim := cfg.Width * cfg.Height
	active := cfg.ProtoCells
	if active <= 0 {
		active = dim / 4
		if active < 3 {
			active = 3
		}
	}
	sharp := cfg.Sharpness
	if sharp <= 0 {
		sharp = 1.0
	}
	protos := make([]tensor.Vector, cfg.Classes)
	for c := range protos {
		p := tensor.NewVector(dim)
		for _, cell := range rng.Perm(dim)[:active] {
			p[cell] = sharp * (0.6 + 0.4*rng.Float64())
		}
		protos[c] = p
	}
	return protos
}

// FEMNISTLikeConfig parameterises the writer-partitioned federated image
// generator standing in for FEMNIST.
type FEMNISTLikeConfig struct {
	Writers          int     // number of writers == FL clients
	SamplesPerWriter int     // training samples held by each writer
	TestSamples      int     // size of the shared test set
	Classes          int     // digit classes
	Width, Height    int     // image shape
	StyleStd         float64 // per-writer style shift magnitude (non-IIDness)
	NoiseStd         float64 // per-sample pixel noise
	Seed             int64
}

// DefaultFEMNISTLike mirrors the paper's FEMNIST usage at laptop scale.
func DefaultFEMNISTLike(writers, perWriter int, seed int64) FEMNISTLikeConfig {
	return FEMNISTLikeConfig{
		Writers:          writers,
		SamplesPerWriter: perWriter,
		TestSamples:      writers * perWriter / 2,
		Classes:          10,
		Width:            10,
		Height:           10,
		StyleStd:         0.25,
		NoiseStd:         0.30,
		Seed:             seed,
	}
}

// FEMNISTLike generates a naturally non-IID federated image dataset: all
// writers share the same class prototypes, but each writer applies a
// persistent style transform (per-pixel additive shift plus contrast scale),
// reproducing the writer heterogeneity that makes FEMNIST the standard
// federated benchmark. It returns one training dataset per writer and a
// style-neutral shared test set.
func FEMNISTLike(cfg FEMNISTLikeConfig) (clients []*Dataset, test *Dataset) {
	if cfg.Writers <= 0 {
		panic("dataset: FEMNISTLike requires at least one writer")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dim := cfg.Width * cfg.Height
	base := SynthImagesConfig{
		Classes: cfg.Classes, Width: cfg.Width, Height: cfg.Height,
		Sharpness: 1.0,
	}
	protos := classPrototypes(base, rng)

	clients = make([]*Dataset, cfg.Writers)
	for w := 0; w < cfg.Writers; w++ {
		styleShift := tensor.NewVector(dim)
		for j := range styleShift {
			styleShift[j] = rng.NormFloat64() * cfg.StyleStd
		}
		contrast := 1.0 + (rng.Float64()-0.5)*cfg.StyleStd

		d := New(fmt.Sprintf("femnist-like/writer-%d", w), cfg.SamplesPerWriter, dim, cfg.Classes)
		d.ImageW, d.ImageH = cfg.Width, cfg.Height
		for i := 0; i < cfg.SamplesPerWriter; i++ {
			y := rng.Intn(cfg.Classes)
			row := d.X.Row(i)
			proto := protos[y]
			for j := 0; j < dim; j++ {
				row[j] = contrast*proto[j] + styleShift[j] + rng.NormFloat64()*cfg.NoiseStd
			}
			d.Y[i] = y
		}
		clients[w] = d
	}

	test = New("femnist-like/test", cfg.TestSamples, dim, cfg.Classes)
	test.ImageW, test.ImageH = cfg.Width, cfg.Height
	for i := 0; i < cfg.TestSamples; i++ {
		y := rng.Intn(cfg.Classes)
		row := test.X.Row(i)
		proto := protos[y]
		for j := 0; j < dim; j++ {
			row[j] = proto[j] + rng.NormFloat64()*cfg.NoiseStd
		}
		test.Y[i] = y
	}
	return clients, test
}

// AdultLikeConfig parameterises the census-style tabular generator standing
// in for the UCI Adult dataset.
type AdultLikeConfig struct {
	Samples     int
	Occupations int // categorical partition key, as in the paper's split
	Seed        int64
	NoiseStd    float64
}

// DefaultAdultLike mirrors the paper's Adult usage.
func DefaultAdultLike(samples int, seed int64) AdultLikeConfig {
	return AdultLikeConfig{Samples: samples, Occupations: 10, Seed: seed, NoiseStd: 0.6}
}

// adultNumericFeatures is the number of continuous census-style features
// (age, education-years, hours-per-week, capital-gain, capital-loss, ...).
const adultNumericFeatures = 6

// AdultLike generates a binary-classification tabular dataset with mixed
// numeric and one-hot categorical features and a logistic ground truth, plus
// per-row occupation codes so it can be partitioned by occupation exactly as
// the paper partitions Adult. The returned occupation slice is parallel to
// the dataset rows.
func AdultLike(cfg AdultLikeConfig) (*Dataset, []int) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	dim := adultNumericFeatures + cfg.Occupations
	d := New("adult-like", cfg.Samples, dim, 2)
	occ := make([]int, cfg.Samples)

	// Ground-truth logistic weights over all features; occupations carry
	// real signal so occupation-partitioned clients differ in value.
	w := tensor.NewVector(dim)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	for i := 0; i < cfg.Samples; i++ {
		o := rng.Intn(cfg.Occupations)
		occ[i] = o
		row := d.X.Row(i)
		// Numeric features correlate mildly with occupation, mimicking
		// income/hours structure in the real Adult data.
		for j := 0; j < adultNumericFeatures; j++ {
			row[j] = rng.NormFloat64() + 0.3*float64(o)/float64(cfg.Occupations)
		}
		row[adultNumericFeatures+o] = 1.0
		z := w.Dot(row) + rng.NormFloat64()*cfg.NoiseStd
		if tensor.Sigmoid(z) > 0.5 {
			d.Y[i] = 1
		}
	}
	return d, occ
}

// PartitionByKey splits rows by an integer key (e.g. occupation) into at
// most n client datasets: keys are assigned round-robin to clients so every
// client receives whole key groups, as in the paper's by-occupation split.
func PartitionByKey(d *Dataset, keys []int, n int) []*Dataset {
	if len(keys) != d.Len() {
		panic("dataset: PartitionByKey key slice length mismatch")
	}
	groups := map[int][]int{}
	order := []int{}
	for i, k := range keys {
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	idxPerClient := make([][]int, n)
	for gi, k := range order {
		c := gi % n
		idxPerClient[c] = append(idxPerClient[c], groups[k]...)
	}
	out := make([]*Dataset, n)
	for c := range out {
		out[c] = d.Subset(fmt.Sprintf("%s/client-%d", d.Name, c), idxPerClient[c])
	}
	return out
}

// Sent140LikeConfig parameterises the bag-of-words sentiment generator
// standing in for Sent-140 (listed in the paper's setup; no reported table).
type Sent140LikeConfig struct {
	Samples int
	Vocab   int
	AvgLen  float64 // average tokens per message
	Seed    int64
}

// Sent140Like generates a two-class bag-of-words dataset: positive and
// negative sentiment each have a distinct word-frequency profile; a sample
// is a Poisson-ish draw of tokens represented as a count vector.
func Sent140Like(cfg Sent140LikeConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Vocab <= 0 {
		cfg.Vocab = 50
	}
	if cfg.AvgLen <= 0 {
		cfg.AvgLen = 12
	}
	profiles := [2]tensor.Vector{tensor.NewVector(cfg.Vocab), tensor.NewVector(cfg.Vocab)}
	for s := 0; s < 2; s++ {
		var sum float64
		for j := range profiles[s] {
			v := math.Exp(rng.NormFloat64())
			profiles[s][j] = v
			sum += v
		}
		profiles[s].Scale(1 / sum)
	}
	d := New("sent140-like", cfg.Samples, cfg.Vocab, 2)
	for i := 0; i < cfg.Samples; i++ {
		y := rng.Intn(2)
		d.Y[i] = y
		length := int(cfg.AvgLen * (0.5 + rng.Float64()))
		row := d.X.Row(i)
		for t := 0; t < length; t++ {
			row[sampleCategorical(profiles[y], rng)]++
		}
	}
	return d
}

func sampleCategorical(p tensor.Vector, rng *rand.Rand) int {
	r := rng.Float64()
	var cum float64
	for i, x := range p {
		cum += x
		if r < cum {
			return i
		}
	}
	return len(p) - 1
}
