package dataset

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestReadCSVWithHeader(t *testing.T) {
	src := "f1,f2,label\n1.5,2.0,0\n-0.5,3,1\n"
	d, err := ReadCSV("t", strings.NewReader(src), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Dim() != 2 {
		t.Fatalf("shape %dx%d", d.Len(), d.Dim())
	}
	if d.NumClasses != 2 {
		t.Errorf("inferred classes = %d", d.NumClasses)
	}
	if d.X.At(0, 0) != 1.5 || d.Y[1] != 1 {
		t.Errorf("content wrong")
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	src := "1,2,0\n3,4,1\n"
	d, err := ReadCSV("t", strings.NewReader(src), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Errorf("len = %d", d.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"header only":   "a,b,label\n",
		"ragged":        "1,2,0\n1,2,3,0\n",
		"bad feature":   "1,x,0\n",
		"bad label":     "1,2,zebra\n",
		"neg label":     "1,2,-1\n",
		"label too big": "1,2,5\n",
	}
	for name, src := range cases {
		classes := 0
		if name == "label too big" {
			classes = 2
		}
		if _, err := ReadCSV("t", strings.NewReader(src), classes); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := ReadCSV("t", strings.NewReader("5\n"), 0); err == nil {
		t.Errorf("single-column row accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := SynthImages(DefaultSynthImages(15, 9))
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("t", &buf, d.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.Dim() != d.Dim() {
		t.Fatalf("shape lost")
	}
	for i := range d.X.Data {
		if back.X.Data[i] != d.X.Data[i] {
			t.Fatalf("value %d lost precision", i)
		}
	}
	for i := range d.Y {
		if back.Y[i] != d.Y[i] {
			t.Fatalf("label %d lost", i)
		}
	}
}

func TestLoadCSVFile(t *testing.T) {
	path := t.TempDir() + "/d.csv"
	d := SynthImages(DefaultSynthImages(10, 11))
	f, err := createFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := LoadCSV(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 10 {
		t.Errorf("len = %d", back.Len())
	}
	if _, err := LoadCSV(path+"-missing", 0); err == nil {
		t.Errorf("missing file accepted")
	}
}

func createFile(path string) (*os.File, error) { return os.Create(path) }
