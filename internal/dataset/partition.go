package dataset

import (
	"fmt"
	"math/rand"
)

// The five federated partitioning setups of the paper's Fig. 6. Each takes a
// pooled training dataset and produces one dataset per FL client.

// PartitionEqualIID implements setup (a) same-size-same-distribution: the
// pool is shuffled and split into n equal partitions, so every client's data
// is an IID sample of the pool.
func PartitionEqualIID(d *Dataset, n int, rng *rand.Rand) []*Dataset {
	if n <= 0 {
		panic("dataset: PartitionEqualIID requires n > 0")
	}
	perm := rng.Perm(d.Len())
	out := make([]*Dataset, n)
	per := d.Len() / n
	for c := 0; c < n; c++ {
		lo, hi := c*per, (c+1)*per
		if c == n-1 {
			hi = d.Len()
		}
		out[c] = d.Subset(fmt.Sprintf("%s/iid-%d", d.Name, c), perm[lo:hi])
	}
	return out
}

// PartitionLabelSkew implements setup (b) same-size-different-distribution:
// each client receives an equal share of samples, but a fraction majorFrac
// of each client's samples come from "its own" label group (labels are
// assigned round-robin to clients), and the remainder is drawn IID. This is
// the standard label-skew construction for non-IID FL benchmarks.
func PartitionLabelSkew(d *Dataset, n int, majorFrac float64, rng *rand.Rand) []*Dataset {
	if majorFrac < 0 || majorFrac > 1 {
		panic("dataset: majorFrac must lie in [0,1]")
	}
	byLabel := make([][]int, d.NumClasses)
	for i, y := range d.Y {
		byLabel[y] = append(byLabel[y], i)
	}
	for _, idx := range byLabel {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
	}
	per := d.Len() / n
	major := int(float64(per) * majorFrac)

	taken := make([]int, d.NumClasses) // consumption cursor per label
	clientIdx := make([][]int, n)

	// Major portion: client c preferentially draws labels ≡ c (mod n).
	for c := 0; c < n; c++ {
		need := major
		for l := c % d.NumClasses; need > 0; l = (l + n) % d.NumClasses {
			avail := len(byLabel[l]) - taken[l]
			take := min(need, avail)
			clientIdx[c] = append(clientIdx[c], byLabel[l][taken[l]:taken[l]+take]...)
			taken[l] += take
			need -= take
			if take == 0 {
				break // this label group exhausted; fall through to IID fill
			}
		}
	}
	// Remainder: round-robin over whatever is left, IID.
	var rest []int
	for l, idx := range byLabel {
		rest = append(rest, idx[taken[l]:]...)
	}
	rng.Shuffle(len(rest), func(a, b int) { rest[a], rest[b] = rest[b], rest[a] })
	r := 0
	for c := 0; c < n; c++ {
		for len(clientIdx[c]) < per && r < len(rest) {
			clientIdx[c] = append(clientIdx[c], rest[r])
			r++
		}
	}
	out := make([]*Dataset, n)
	for c := range out {
		out[c] = d.Subset(fmt.Sprintf("%s/skew-%d", d.Name, c), clientIdx[c])
	}
	return out
}

// PartitionBySizeRatio implements setup (c) different-size-same-distribution:
// the shuffled pool is split with size ratios 1 : 2 : ... : n.
func PartitionBySizeRatio(d *Dataset, n int, rng *rand.Rand) []*Dataset {
	perm := rng.Perm(d.Len())
	total := n * (n + 1) / 2
	out := make([]*Dataset, n)
	pos := 0
	for c := 0; c < n; c++ {
		share := d.Len() * (c + 1) / total
		if c == n-1 {
			share = d.Len() - pos
		}
		out[c] = d.Subset(fmt.Sprintf("%s/ratio-%d", d.Name, c), perm[pos:pos+share])
		pos += share
	}
	return out
}

// AddLabelNoise implements setup (d) same-size-noisy-label: it flips a
// fraction frac of labels to one of the other labels with equal probability,
// in place, and returns the number of flipped samples.
func AddLabelNoise(d *Dataset, frac float64, rng *rand.Rand) int {
	if frac < 0 || frac > 1 {
		panic("dataset: label-noise fraction must lie in [0,1]")
	}
	if d.NumClasses < 2 {
		return 0
	}
	flipped := 0
	for i := range d.Y {
		if rng.Float64() >= frac {
			continue
		}
		old := d.Y[i]
		ny := rng.Intn(d.NumClasses - 1)
		if ny >= old {
			ny++
		}
		d.Y[i] = ny
		flipped++
	}
	return flipped
}

// AddFeatureNoise implements setup (e) same-size-noisy-feature: it adds
// scale · N(0,1) noise to every feature of every sample, in place.
func AddFeatureNoise(d *Dataset, scale float64, rng *rand.Rand) {
	if scale == 0 {
		return
	}
	for i := range d.X.Data {
		d.X.Data[i] += scale * rng.NormFloat64()
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
