// Package combin provides coalition (subset) representations and the
// combinatorial primitives used throughout Shapley-value computation:
// bitmask coalitions, binomial coefficients, stratum enumeration, and
// reproducible sampling of subsets and permutations.
//
// A coalition over n players (n <= 127) is a 128-bit bitmask (two uint64
// words) where bit i set means player i is a member — wide enough for the
// paper's 100-client scalability experiments. Bitmasks keep the exponential
// bookkeeping of Shapley computation cheap: union, membership, complement
// and popcount are a handful of instructions, and a coalition is directly
// usable as a cache key (the struct is comparable).
//
// Exhaustive power-set enumeration (AllSubsets) is limited to small n;
// per-stratum enumeration (SubsetsOfSize) works at any width but is guarded
// by a C(n,k) ceiling — beyond it, enumeration is astronomically infeasible
// regardless of representation, and the sampling-based algorithms never ask
// for it.
package combin

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// MaxPlayers is the largest federation size representable by a Coalition.
const MaxPlayers = 127

// maxEnumerate is the largest federation size for which exhaustive stratum
// enumeration is supported.
const maxEnumerate = 63

// Coalition is a subset of players encoded as a 128-bit bitmask.
type Coalition struct {
	lo, hi uint64
}

// Empty is the coalition with no members.
var Empty = Coalition{}

// FullCoalition returns the coalition containing all n players.
func FullCoalition(n int) Coalition {
	if n < 0 || n > MaxPlayers {
		panic(fmt.Sprintf("combin: player count %d out of range [0,%d]", n, MaxPlayers))
	}
	switch {
	case n == 0:
		return Coalition{}
	case n <= 64:
		if n == 64 {
			return Coalition{lo: ^uint64(0)}
		}
		return Coalition{lo: (uint64(1) << uint(n)) - 1}
	default:
		return Coalition{lo: ^uint64(0), hi: (uint64(1) << uint(n-64)) - 1}
	}
}

// NewCoalition builds a coalition from an explicit member list.
func NewCoalition(members ...int) Coalition {
	var c Coalition
	for _, m := range members {
		c = c.With(m)
	}
	return c
}

// fromLo lifts a low-word bitmask into a Coalition (enumeration fast path).
func fromLo(m uint64) Coalition { return Coalition{lo: m} }

// FromMask builds a coalition from a low-word bitmask over players 0..63
// (the inverse of Index for small federations).
func FromMask(m uint64) Coalition { return Coalition{lo: m} }

// With returns the coalition with player i added.
func (c Coalition) With(i int) Coalition {
	checkPlayer(i)
	if i < 64 {
		c.lo |= 1 << uint(i)
	} else {
		c.hi |= 1 << uint(i-64)
	}
	return c
}

// Without returns the coalition with player i removed.
func (c Coalition) Without(i int) Coalition {
	checkPlayer(i)
	if i < 64 {
		c.lo &^= 1 << uint(i)
	} else {
		c.hi &^= 1 << uint(i-64)
	}
	return c
}

// Has reports whether player i is a member.
func (c Coalition) Has(i int) bool {
	checkPlayer(i)
	if i < 64 {
		return c.lo&(1<<uint(i)) != 0
	}
	return c.hi&(1<<uint(i-64)) != 0
}

// Size returns the number of members |S|.
func (c Coalition) Size() int {
	return bits.OnesCount64(c.lo) + bits.OnesCount64(c.hi)
}

// IsEmpty reports whether the coalition has no members.
func (c Coalition) IsEmpty() bool { return c.lo == 0 && c.hi == 0 }

// Complement returns N \ S for a federation of n players.
func (c Coalition) Complement(n int) Coalition {
	full := FullCoalition(n)
	return Coalition{lo: full.lo &^ c.lo, hi: full.hi &^ c.hi}
}

// Union returns S ∪ T.
func (c Coalition) Union(t Coalition) Coalition {
	return Coalition{lo: c.lo | t.lo, hi: c.hi | t.hi}
}

// Intersect returns S ∩ T.
func (c Coalition) Intersect(t Coalition) Coalition {
	return Coalition{lo: c.lo & t.lo, hi: c.hi & t.hi}
}

// Minus returns S \ T.
func (c Coalition) Minus(t Coalition) Coalition {
	return Coalition{lo: c.lo &^ t.lo, hi: c.hi &^ t.hi}
}

// SubsetOf reports whether c ⊆ t.
func (c Coalition) SubsetOf(t Coalition) bool {
	return c.lo&^t.lo == 0 && c.hi&^t.hi == 0
}

// Less orders coalitions by bitmask value (hi word first), giving a stable
// deterministic order for sorting sampled sets.
func (c Coalition) Less(t Coalition) bool {
	if c.hi != t.hi {
		return c.hi < t.hi
	}
	return c.lo < t.lo
}

// Index returns the coalition as a dense array index. It is only valid for
// federations of at most 63 players (the exhaustive-computation regime) and
// panics if the high word is occupied.
func (c Coalition) Index() uint64 {
	if c.hi != 0 {
		panic("combin: Index on coalition with players >= 64")
	}
	return c.lo
}

// Words returns the raw bitmask words (players 0-63 in lo, 64-126 in hi),
// for serialisation. FromWords is the inverse.
func (c Coalition) Words() (lo, hi uint64) { return c.lo, c.hi }

// FromWords rebuilds a coalition from its raw bitmask words.
func FromWords(lo, hi uint64) Coalition { return Coalition{lo: lo, hi: hi} }

// Hash returns a well-mixed 64-bit hash of the bitmask (splitmix64-style
// finaliser), suitable for sharded caches: coalitions that differ in a
// single low bit land in different shards.
func (c Coalition) Hash() uint64 {
	h := c.lo ^ bits.RotateLeft64(c.hi, 32) ^ 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Members returns the sorted member indices.
func (c Coalition) Members() []int {
	out := make([]int, 0, c.Size())
	for m := c.lo; m != 0; {
		out = append(out, bits.TrailingZeros64(m))
		m &= m - 1
	}
	for m := c.hi; m != 0; {
		out = append(out, 64+bits.TrailingZeros64(m))
		m &= m - 1
	}
	return out
}

// String renders the coalition as "{0,2,5}".
func (c Coalition) String() string {
	if c.IsEmpty() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for idx, m := range c.Members() {
		if idx > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(m))
	}
	b.WriteByte('}')
	return b.String()
}

func checkPlayer(i int) {
	if i < 0 || i >= MaxPlayers {
		panic(fmt.Sprintf("combin: player index %d out of range [0,%d)", i, MaxPlayers))
	}
}

// AllSubsets calls fn for every subset of the full coalition over n players,
// including the empty set and the grand coalition, in ascending bitmask
// order. It panics if n exceeds 30 to guard against accidental 2^63 loops.
func AllSubsets(n int, fn func(Coalition)) {
	if n > 30 {
		panic("combin: AllSubsets over more than 30 players is infeasible")
	}
	full := FullCoalition(n).lo
	for m := uint64(0); ; m++ {
		fn(fromLo(m))
		if m == full {
			return
		}
	}
}

// maxStratumEnumeration bounds how many subsets one SubsetsOfSize call may
// yield, guarding against infeasible loops (e.g. C(100, 50)).
const maxStratumEnumeration = 1 << 24

// SubsetsOfSize calls fn for every subset of {0..n-1} with exactly k
// members, in a deterministic order. For n <= 63 it
// uses Gosper's hack on the low word; for wider federations (the Fig. 9
// regime, n up to 127) it enumerates recursively — only small strata are
// ever requested there, and the C(n,k) guard enforces that.
func SubsetsOfSize(n, k int, fn func(Coalition)) {
	if k < 0 || k > n {
		return
	}
	if c := BinomialInt(n, k); c > maxStratumEnumeration {
		panic(fmt.Sprintf("combin: SubsetsOfSize(%d,%d) would enumerate %d subsets (limit %d)",
			n, k, c, maxStratumEnumeration))
	}
	if k == 0 {
		fn(Empty)
		return
	}
	if n <= maxEnumerate {
		limit := uint64(1) << uint(n)
		v := (uint64(1) << uint(k)) - 1
		for v < limit {
			fn(fromLo(v))
			// Gosper's hack: next higher integer with same popcount.
			c := v & (^v + 1)
			r := v + c
			v = (((r ^ v) >> 2) / c) | r
			if c == 0 {
				break
			}
		}
		return
	}
	// Wide path: recursive k-combination enumeration in ascending order.
	var rec func(start int, cur Coalition, picked int)
	rec = func(start int, cur Coalition, picked int) {
		if picked == k {
			fn(cur)
			return
		}
		// Need (k - picked) more members from start..n-1.
		for i := start; i <= n-(k-picked); i++ {
			rec(i+1, cur.With(i), picked+1)
		}
	}
	rec(0, Empty, 0)
}

// SubsetsOfSizeNotContaining enumerates the size-k subsets of {0..n-1}\{i}.
func SubsetsOfSizeNotContaining(n, k, i int, fn func(Coalition)) {
	SubsetsOfSize(n-1, k, func(s Coalition) {
		fn(insertGap(s, i))
	})
}

// insertGap remaps a coalition over n-1 players to one over n players where
// index i is skipped: players >= i shift up by one position. The common
// low-word case is a couple of shifts; wide coalitions (or a shift that
// would carry into the high word) rebuild member by member.
func insertGap(s Coalition, i int) Coalition {
	if s.hi == 0 && s.lo>>63 == 0 && i < 64 {
		mask := uint64(1)<<uint(i) - 1
		return fromLo(s.lo&mask | (s.lo&^mask)<<1)
	}
	var out Coalition
	for _, m := range s.Members() {
		if m >= i {
			out = out.With(m + 1)
		} else {
			out = out.With(m)
		}
	}
	return out
}
