package combin

import "fmt"

// Binomial returns C(n, k) as a float64. Exact for the range used in
// valuation (n <= 63); float64 keeps the Shapley weights 1/(n*C(n-1,k))
// free of integer-overflow concerns.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return res
}

// BinomialInt returns C(n, k) as uint64, panicking on overflow. Used where
// an exact count is needed (e.g. stratum sizes for budget accounting).
func BinomialInt(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var res uint64 = 1
	for i := 0; i < k; i++ {
		next := res * uint64(n-i)
		if next/uint64(n-i) != res {
			panic(fmt.Sprintf("combin: C(%d,%d) overflows uint64", n, k))
		}
		res = next / uint64(i+1)
	}
	return res
}

// CumulativeBinomial returns Σ_{j=0..k} C(n, j), saturating at max uint64.
func CumulativeBinomial(n, k int) uint64 {
	var sum uint64
	for j := 0; j <= k && j <= n; j++ {
		b := BinomialInt(n, j)
		if sum+b < sum {
			return ^uint64(0) // saturate
		}
		sum += b
	}
	return sum
}

// MaxFullStratum returns k* = max{k : Σ_{j=0..k} C(n,j) <= budget}, the
// largest combination size that can be exhaustively evaluated within the
// sampling budget (Alg. 3 line 1). Returns -1 if even the empty coalition
// does not fit (budget == 0).
func MaxFullStratum(n int, budget uint64) int {
	kstar := -1
	var sum uint64
	for k := 0; k <= n; k++ {
		b := BinomialInt(n, k)
		if sum+b < sum || sum+b > budget {
			break
		}
		sum += b
		kstar = k
	}
	return kstar
}

// Factorial returns n! as float64 (exact through n = 20, approximate above).
func Factorial(n int) float64 {
	res := 1.0
	for i := 2; i <= n; i++ {
		res *= float64(i)
	}
	return res
}
