package combin

import (
	"math/rand"
	"sort"
)

// RandomSubsetOfSize draws one uniform-random subset of {0..n-1} with
// exactly k members using a partial Fisher-Yates shuffle.
func RandomSubsetOfSize(n, k int, rng *rand.Rand) Coalition {
	if k < 0 || k > n {
		panic("combin: RandomSubsetOfSize size out of range")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var c Coalition
	for j := 0; j < k; j++ {
		p := j + rng.Intn(n-j)
		idx[j], idx[p] = idx[p], idx[j]
		c = c.With(idx[j])
	}
	return c
}

// SampleStratumWithoutReplacement draws up to m distinct subsets of size k
// from {0..n-1}. When m >= C(n,k) it returns the whole stratum. For small
// strata it enumerates and shuffles; for large strata it rejection-samples,
// which is efficient because m << C(n,k) in that regime.
func SampleStratumWithoutReplacement(n, k, m int, rng *rand.Rand) []Coalition {
	if m <= 0 {
		return nil
	}
	total := BinomialInt(n, k)
	if uint64(m) >= total {
		out := make([]Coalition, 0, total)
		SubsetsOfSize(n, k, func(s Coalition) { out = append(out, s) })
		return out
	}
	// Enumerate-and-shuffle when the stratum is small enough to hold.
	const enumerateLimit = 1 << 16
	if total <= enumerateLimit {
		all := make([]Coalition, 0, total)
		SubsetsOfSize(n, k, func(s Coalition) { all = append(all, s) })
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		return all[:m]
	}
	seen := make(map[Coalition]struct{}, m)
	out := make([]Coalition, 0, m)
	for len(out) < m {
		s := RandomSubsetOfSize(n, k, rng)
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// BalancedStratumSample draws up to m distinct subsets of size k from
// {0..n-1} such that every player appears in (as close as possible) the same
// number of sampled subsets — constraint (3) of Alg. 3 (C_i = C_j for all
// i, j). It builds subsets greedily from the least-covered players, breaking
// ties randomly, and retries on duplicates.
//
// Exact equality of coverage requires m*k ≡ 0 (mod n); otherwise coverage
// counts differ by at most one, which is the best achievable.
func BalancedStratumSample(n, k, m int, rng *rand.Rand) []Coalition {
	if m <= 0 || k <= 0 || k > n {
		return nil
	}
	total := BinomialInt(n, k)
	if uint64(m) >= total {
		out := make([]Coalition, 0, total)
		SubsetsOfSize(n, k, func(s Coalition) { out = append(out, s) })
		return out
	}
	coverage := make([]int, n)
	seen := make(map[Coalition]struct{}, m)
	out := make([]Coalition, 0, m)
	attempts := 0
	maxAttempts := 64 * m
	for len(out) < m && attempts < maxAttempts {
		attempts++
		s := leastCoveredSubset(coverage, k, rng)
		if _, dup := seen[s]; dup {
			// Re-draw with extra randomness: perturb by random subset.
			s = RandomSubsetOfSize(len(coverage), k, rng)
			if _, dup2 := seen[s]; dup2 {
				continue
			}
		}
		seen[s] = struct{}{}
		out = append(out, s)
		for _, i := range s.Members() {
			coverage[i]++
		}
	}
	// Fallback: top up with rejection sampling if the greedy loop stalled.
	for len(out) < m {
		s := RandomSubsetOfSize(n, k, rng)
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}

// leastCoveredSubset picks k players preferring those with the lowest
// coverage count, breaking ties uniformly at random.
func leastCoveredSubset(coverage []int, k int, rng *rand.Rand) Coalition {
	n := len(coverage)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	sort.SliceStable(order, func(a, b int) bool {
		return coverage[order[a]] < coverage[order[b]]
	})
	var c Coalition
	for _, i := range order[:k] {
		c = c.With(i)
	}
	return c
}

// RandomPermutation returns a uniform-random permutation of 0..n-1.
func RandomPermutation(n int, rng *rand.Rand) []int {
	p := rng.Perm(n)
	return p
}

// ForEachPermutation enumerates all n! permutations of 0..n-1 via Heap's
// algorithm, calling fn with each. fn must not retain the slice. Panics for
// n > 12 (479M permutations) to guard against infeasible loops.
func ForEachPermutation(n int, fn func([]int)) {
	if n > 12 {
		panic("combin: ForEachPermutation over more than 12 players is infeasible")
	}
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(p)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				p[i], p[k-1] = p[k-1], p[i]
			} else {
				p[0], p[k-1] = p[k-1], p[0]
			}
		}
	}
	if n == 0 {
		fn(p)
		return
	}
	rec(n)
}
