package combin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoalitionBasics(t *testing.T) {
	c := NewCoalition(0, 2, 5)
	if got := c.Size(); got != 3 {
		t.Fatalf("Size = %d, want 3", got)
	}
	for _, i := range []int{0, 2, 5} {
		if !c.Has(i) {
			t.Errorf("Has(%d) = false, want true", i)
		}
	}
	for _, i := range []int{1, 3, 4, 6} {
		if c.Has(i) {
			t.Errorf("Has(%d) = true, want false", i)
		}
	}
	if got := c.String(); got != "{0,2,5}" {
		t.Errorf("String = %q, want {0,2,5}", got)
	}
	if Empty.String() != "{}" {
		t.Errorf("Empty.String() = %q", Empty.String())
	}
}

func TestWithWithout(t *testing.T) {
	c := Empty.With(3)
	if !c.Has(3) || c.Size() != 1 {
		t.Fatalf("With(3) produced %v", c)
	}
	if c.Without(3) != Empty {
		t.Fatalf("Without(3) should restore Empty")
	}
	// Idempotence.
	if c.With(3) != c {
		t.Errorf("With is not idempotent")
	}
	if Empty.Without(3) != Empty {
		t.Errorf("Without on absent member should be identity")
	}
}

func TestComplement(t *testing.T) {
	n := 5
	c := NewCoalition(1, 3)
	comp := c.Complement(n)
	want := NewCoalition(0, 2, 4)
	if comp != want {
		t.Fatalf("Complement = %v, want %v", comp, want)
	}
	if c.Union(comp) != FullCoalition(n) {
		t.Errorf("S ∪ S̄ should be N")
	}
	if c.Intersect(comp) != Empty {
		t.Errorf("S ∩ S̄ should be empty")
	}
}

func TestComplementProperty(t *testing.T) {
	f := func(raw uint16, nRaw uint8) bool {
		n := int(nRaw%12) + 1
		c := FromMask(uint64(raw)).Intersect(FullCoalition(n))
		return c.Complement(n).Complement(n) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMembersRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		c := FromMask(uint64(raw))
		return NewCoalition(c.Members()...) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubsetOf(t *testing.T) {
	a := NewCoalition(1, 2)
	b := NewCoalition(1, 2, 3)
	if !a.SubsetOf(b) {
		t.Errorf("{1,2} should be subset of {1,2,3}")
	}
	if b.SubsetOf(a) {
		t.Errorf("{1,2,3} should not be subset of {1,2}")
	}
	if !Empty.SubsetOf(a) {
		t.Errorf("empty set should be subset of everything")
	}
}

func TestAllSubsetsCount(t *testing.T) {
	for n := 0; n <= 10; n++ {
		count := 0
		AllSubsets(n, func(Coalition) { count++ })
		if count != 1<<uint(n) {
			t.Errorf("AllSubsets(%d) visited %d, want %d", n, count, 1<<uint(n))
		}
	}
}

func TestSubsetsOfSize(t *testing.T) {
	for n := 1; n <= 8; n++ {
		total := 0
		for k := 0; k <= n; k++ {
			count := 0
			seen := map[Coalition]bool{}
			SubsetsOfSize(n, k, func(s Coalition) {
				count++
				if s.Size() != k {
					t.Fatalf("SubsetsOfSize(%d,%d) yielded size %d", n, k, s.Size())
				}
				if seen[s] {
					t.Fatalf("SubsetsOfSize(%d,%d) yielded duplicate %v", n, k, s)
				}
				seen[s] = true
			})
			if want := int(BinomialInt(n, k)); count != want {
				t.Errorf("SubsetsOfSize(%d,%d) yielded %d, want %d", n, k, count, want)
			}
			total += count
		}
		if total != 1<<uint(n) {
			t.Errorf("strata of n=%d don't partition the power set: %d", n, total)
		}
	}
}

func TestSubsetsOfSizeNotContaining(t *testing.T) {
	n, k, excl := 6, 3, 2
	count := 0
	SubsetsOfSizeNotContaining(n, k, excl, func(s Coalition) {
		count++
		if s.Has(excl) {
			t.Fatalf("subset %v contains excluded player %d", s, excl)
		}
		if s.Size() != k {
			t.Fatalf("subset %v has size %d, want %d", s, s.Size(), k)
		}
		if !s.SubsetOf(FullCoalition(n)) {
			t.Fatalf("subset %v out of range for n=%d", s, n)
		}
	})
	if want := int(BinomialInt(n-1, k)); count != want {
		t.Errorf("count = %d, want %d", count, want)
	}
}

func TestInsertGapProperty(t *testing.T) {
	f := func(raw uint16, gapRaw uint8) bool {
		gap := int(gapRaw % 10)
		s := FromMask(uint64(raw)).Intersect(FullCoalition(10))
		out := insertGap(s, gap)
		if out.Has(gap) {
			return false
		}
		return out.Size() == s.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 5, 252},
		{9, 4, 126}, {3, 5, 0}, {4, -1, 0}, {63, 31, 9.16312070471295e17},
	}
	for _, c := range cases {
		got := Binomial(c.n, c.k)
		if rel := (got - c.want) / maxf(c.want, 1); rel > 1e-9 || rel < -1e-9 {
			t.Errorf("Binomial(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestBinomialIntPascal(t *testing.T) {
	for n := 1; n <= 30; n++ {
		for k := 1; k < n; k++ {
			if BinomialInt(n, k) != BinomialInt(n-1, k-1)+BinomialInt(n-1, k) {
				t.Fatalf("Pascal identity fails at C(%d,%d)", n, k)
			}
		}
	}
}

func TestCumulativeBinomial(t *testing.T) {
	if got := CumulativeBinomial(4, 1); got != 5 {
		t.Errorf("CumulativeBinomial(4,1) = %d, want 5", got)
	}
	if got := CumulativeBinomial(10, 10); got != 1024 {
		t.Errorf("CumulativeBinomial(10,10) = %d, want 1024", got)
	}
	if got := CumulativeBinomial(10, 2); got != 1+10+45 {
		t.Errorf("CumulativeBinomial(10,2) = %d, want 56", got)
	}
}

func TestMaxFullStratum(t *testing.T) {
	// The paper's Example 3: n=4, γ=10 → k* = 1 (1+4=5 ≤ 10 < 5+6=11).
	if got := MaxFullStratum(4, 10); got != 1 {
		t.Errorf("MaxFullStratum(4,10) = %d, want 1", got)
	}
	// Table III: n=10, γ=32 → 1+10=11 ≤ 32 < 11+45=56 → k*=1.
	if got := MaxFullStratum(10, 32); got != 1 {
		t.Errorf("MaxFullStratum(10,32) = %d, want 1", got)
	}
	// n=3, γ=5 → 1+3=4 ≤ 5 < 4+3=7 → k*=1.
	if got := MaxFullStratum(3, 5); got != 1 {
		t.Errorf("MaxFullStratum(3,5) = %d, want 1", got)
	}
	// Budget covers everything.
	if got := MaxFullStratum(4, 16); got != 4 {
		t.Errorf("MaxFullStratum(4,16) = %d, want 4", got)
	}
	// Budget 0: nothing fits.
	if got := MaxFullStratum(4, 0); got != -1 {
		t.Errorf("MaxFullStratum(4,0) = %d, want -1", got)
	}
}

func TestMaxFullStratumProperty(t *testing.T) {
	f := func(nRaw, gRaw uint8) bool {
		n := int(nRaw%20) + 1
		gamma := uint64(gRaw)
		k := MaxFullStratum(n, gamma)
		if k >= 0 && CumulativeBinomial(n, k) > gamma {
			return false
		}
		if k+1 <= n && CumulativeBinomial(n, k+1) <= gamma {
			return false // not maximal
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFactorial(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Errorf("Factorial(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestRandomSubsetOfSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		k := rng.Intn(n + 1)
		s := RandomSubsetOfSize(n, k, rng)
		if s.Size() != k {
			t.Fatalf("size = %d, want %d", s.Size(), k)
		}
		if !s.SubsetOf(FullCoalition(n)) {
			t.Fatalf("subset %v escapes range n=%d", s, n)
		}
	}
}

func TestRandomSubsetUniformity(t *testing.T) {
	// Over many draws of 2-subsets of 4 players, each of the 6 subsets
	// should appear roughly equally often.
	rng := rand.New(rand.NewSource(7))
	counts := map[Coalition]int{}
	const draws = 6000
	for i := 0; i < draws; i++ {
		counts[RandomSubsetOfSize(4, 2, rng)]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct subsets, want 6", len(counts))
	}
	for s, c := range counts {
		if c < draws/6-draws/12 || c > draws/6+draws/12 {
			t.Errorf("subset %v count %d deviates from uniform %d", s, c, draws/6)
		}
	}
}

func TestSampleStratumWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	got := SampleStratumWithoutReplacement(6, 3, 10, rng)
	if len(got) != 10 {
		t.Fatalf("len = %d, want 10", len(got))
	}
	seen := map[Coalition]bool{}
	for _, s := range got {
		if s.Size() != 3 {
			t.Errorf("sampled subset %v has wrong size", s)
		}
		if seen[s] {
			t.Errorf("duplicate subset %v", s)
		}
		seen[s] = true
	}
	// Requesting more than the stratum returns the whole stratum.
	all := SampleStratumWithoutReplacement(5, 2, 100, rng)
	if len(all) != 10 {
		t.Errorf("over-request returned %d, want 10", len(all))
	}
}

func TestBalancedStratumSample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// The paper's Example 3 shape: n=4, k=2, m=5. Coverage must differ by
	// at most 1 across clients (5*2/4 = 2.5 → counts 2 or 3).
	p := BalancedStratumSample(4, 2, 5, rng)
	if len(p) != 5 {
		t.Fatalf("len = %d, want 5", len(p))
	}
	cov := make([]int, 4)
	seen := map[Coalition]bool{}
	for _, s := range p {
		if s.Size() != 2 {
			t.Fatalf("sampled subset %v has wrong size", s)
		}
		if seen[s] {
			t.Fatalf("duplicate subset %v", s)
		}
		seen[s] = true
		for _, i := range s.Members() {
			cov[i]++
		}
	}
	minC, maxC := cov[0], cov[0]
	for _, c := range cov[1:] {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC-minC > 1 {
		t.Errorf("coverage spread %v exceeds 1", cov)
	}
}

func TestBalancedStratumSampleExactCoverage(t *testing.T) {
	// m*k divisible by n: exact equality achievable and expected.
	rng := rand.New(rand.NewSource(5))
	p := BalancedStratumSample(6, 2, 9, rng) // 9*2/6 = 3 each
	cov := make([]int, 6)
	for _, s := range p {
		for _, i := range s.Members() {
			cov[i]++
		}
	}
	for i, c := range cov {
		if c < 2 || c > 4 {
			t.Errorf("client %d coverage %d far from balanced 3 (%v)", i, c, cov)
		}
	}
}

func TestForEachPermutation(t *testing.T) {
	for n := 0; n <= 6; n++ {
		count := 0
		seen := map[string]bool{}
		ForEachPermutation(n, func(p []int) {
			count++
			key := ""
			for _, x := range p {
				key += string(rune('a' + x))
			}
			if seen[key] {
				t.Fatalf("duplicate permutation %v", p)
			}
			seen[key] = true
		})
		if want := int(Factorial(n)); count != want {
			t.Errorf("n=%d: %d permutations, want %d", n, count, want)
		}
	}
}

func TestPanics(t *testing.T) {
	assertPanics(t, "FullCoalition(128)", func() { FullCoalition(128) })
	assertPanics(t, "Has(-1)", func() { Empty.Has(-1) })
	assertPanics(t, "With(127)", func() { Empty.With(127) })
	assertPanics(t, "AllSubsets(31)", func() { AllSubsets(31, func(Coalition) {}) })
	assertPanics(t, "SubsetsOfSize(100,15)", func() { SubsetsOfSize(100, 15, func(Coalition) {}) })
	assertPanics(t, "ForEachPermutation(13)", func() { ForEachPermutation(13, func([]int) {}) })
	assertPanics(t, "Index(high)", func() { NewCoalition(100).Index() })
}

// The 128-bit representation must behave identically across the word
// boundary: players 60..100 exercise both words.
func TestWideCoalitions(t *testing.T) {
	c := NewCoalition(2, 63, 64, 100)
	if c.Size() != 4 {
		t.Fatalf("Size = %d", c.Size())
	}
	for _, i := range []int{2, 63, 64, 100} {
		if !c.Has(i) {
			t.Errorf("Has(%d) = false", i)
		}
	}
	if c.Has(65) || c.Has(99) {
		t.Errorf("phantom members")
	}
	got := c.Members()
	want := []int{2, 63, 64, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v", got)
		}
	}
	if c.Without(64).Has(64) {
		t.Errorf("Without(64) failed")
	}
	// Complement over 110 players.
	comp := c.Complement(110)
	if comp.Size() != 110-4 {
		t.Errorf("complement size %d", comp.Size())
	}
	if c.Union(comp) != FullCoalition(110) {
		t.Errorf("S ∪ S̄ ≠ N at width 110")
	}
	if c.Intersect(comp) != Empty {
		t.Errorf("S ∩ S̄ ≠ ∅ at width 110")
	}
	if c.String() != "{2,63,64,100}" {
		t.Errorf("String = %q", c.String())
	}
}

func TestWideRandomSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		s := RandomSubsetOfSize(100, 17, rng)
		if s.Size() != 17 {
			t.Fatalf("size = %d", s.Size())
		}
		if !s.SubsetOf(FullCoalition(100)) {
			t.Fatalf("subset escapes 100-player range")
		}
	}
	// Balanced sampling at 100 players (the Fig. 9 regime).
	p := BalancedStratumSample(100, 2, 50, rng)
	if len(p) != 50 {
		t.Fatalf("balanced sample len = %d", len(p))
	}
	cov := make([]int, 100)
	for _, s := range p {
		for _, i := range s.Members() {
			cov[i]++
		}
	}
	maxC := 0
	for _, c := range cov {
		if c > maxC {
			maxC = c
		}
	}
	if maxC > 2 {
		t.Errorf("coverage max %d for 50×2 over 100 players", maxC)
	}
}

func TestLessOrdering(t *testing.T) {
	a := NewCoalition(1)
	b := NewCoalition(2)
	w := NewCoalition(80)
	if !a.Less(b) || b.Less(a) {
		t.Errorf("low-word ordering broken")
	}
	if !a.Less(w) || w.Less(a) {
		t.Errorf("cross-word ordering broken")
	}
}

func TestFromMaskIndexRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		return FromMask(uint64(raw)).Index() == uint64(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestSubsetsOfSizeWidePath(t *testing.T) {
	// n > 63 exercises the recursive enumerator.
	count := 0
	seen := map[Coalition]bool{}
	SubsetsOfSize(70, 2, func(s Coalition) {
		count++
		if s.Size() != 2 {
			t.Fatalf("size %d", s.Size())
		}
		if seen[s] {
			t.Fatalf("duplicate %v", s)
		}
		seen[s] = true
		if !s.SubsetOf(FullCoalition(70)) {
			t.Fatalf("out of range: %v", s)
		}
	})
	if want := int(BinomialInt(70, 2)); count != want {
		t.Errorf("count = %d, want %d", count, want)
	}
	// k = 0 and k = 1 also work wide.
	ones := 0
	SubsetsOfSize(100, 1, func(s Coalition) { ones++ })
	if ones != 100 {
		t.Errorf("singletons = %d", ones)
	}
}

func TestInsertGapWide(t *testing.T) {
	// Wide coalitions and carries across the word boundary.
	s := NewCoalition(10, 62, 63, 70)
	out := insertGap(s, 5)
	want := NewCoalition(11, 63, 64, 71)
	if out != want {
		t.Fatalf("insertGap wide = %v, want %v", out, want)
	}
	// Gap above all members: unchanged.
	if insertGap(NewCoalition(1, 2), 50) != NewCoalition(1, 2) {
		t.Errorf("gap above members should not move them")
	}
	// Carry from bit 63 into the high word.
	c := NewCoalition(63)
	if got := insertGap(c, 0); got != NewCoalition(64) {
		t.Errorf("carry failed: %v", got)
	}
}

func TestSubsetsOfSizeNotContainingWide(t *testing.T) {
	n, k, excl := 70, 1, 65
	count := 0
	SubsetsOfSizeNotContaining(n, k, excl, func(s Coalition) {
		count++
		if s.Has(excl) {
			t.Fatalf("excluded member present in %v", s)
		}
		if !s.SubsetOf(FullCoalition(n)) {
			t.Fatalf("out of range: %v", s)
		}
	})
	if count != 69 {
		t.Errorf("count = %d, want 69", count)
	}
}
