#!/bin/sh
# coverage_floor.sh — advisory per-package coverage floor report.
#
# Usage: coverage_floor.sh <coverage.out> [floor-percent]
#
# Aggregates a merged `go test -coverprofile` profile into per-package
# statement coverage and flags packages under the floor (default 50%).
# Binary mains (cmd/...) and examples are reported but exempt — they are
# exercised by the e2e and load-smoke steps, not by `go test`. Exits
# non-zero when any floored package is under the floor; CI runs this with
# continue-on-error so a dip is visible in the log without blocking the
# build — the floor is a trend alarm, not a merge gate.
set -eu

profile=${1:?usage: coverage_floor.sh <coverage.out> [floor-percent]}
floor=${2:-50}

awk -v floor="$floor" '
NR == 1 { next } # "mode:" header
{
	# fedshap/internal/foo/bar.go:12.2,14.3 <numstmt> <hitcount>
	split($1, loc, ":")
	pkg = loc[1]
	sub("/[^/]*$", "", pkg)
	stmts[pkg] += $2
	if ($3 > 0) covered[pkg] += $2
}
END {
	bad = 0
	for (pkg in stmts) {
		pct = 100 * covered[pkg] / stmts[pkg]
		mark = ""
		if (pkg ~ /\/cmd\// || pkg ~ /\/examples\//) {
			if (pct < floor) mark = "  (exempt: binary main)"
		} else if (pct < floor) {
			mark = sprintf("  << below %g%% floor", floor)
			bad++
		}
		printf "%-42s %6.1f%%%s\n", pkg, pct, mark
	}
	if (bad) {
		printf "\n%d package(s) below the %g%% advisory coverage floor\n", bad, floor
		exit 1
	}
	printf "\nall packages at or above the %g%% advisory coverage floor\n", floor
}' "$profile"
