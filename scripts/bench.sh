#!/bin/sh
# bench.sh — runs the key performance benchmarks and records the results as
# JSON, so every PR leaves a comparable point on the perf trajectory.
#
#   sh scripts/bench.sh                   # full run, writes BENCH_PR<n>.json
#   sh scripts/bench.sh -short out.json   # one iteration per benchmark (CI smoke)
#   sh scripts/bench.sh -gate out.json    # 200ms/benchmark: stable enough for
#                                         # the bench_diff.sh regression gate
#   BENCH_PR=7 sh scripts/bench.sh        # stamp + name the point for PR 7
#
# The PR number defaults to one past the newest committed BENCH_PR<n>.json
# (so a fresh PR's run lands on a new file automatically, and the
# trajectory accumulates instead of overwriting); set BENCH_PR explicitly
# to re-record an existing point. An explicit output filename argument
# overrides the derived name.
#
# The benchmark set covers the evaluation pipeline end to end:
#   BenchmarkFederationValue   public API, IPSS on MLP, serial vs worker pool
#   BenchmarkIPSS              one IPSS run at the Table III budget
#   BenchmarkUtilityEval       τ, the per-coalition train+evaluate cost
#   BenchmarkOraclePrefetch    the concurrent evaluation pool over the cache
#
# A fedvalload load stage follows the microbenchmarks and merges
# service-level percentiles (LoadSubmitP50/95, LoadQueueWaitP50/95/99,
# LoadJobLatencyP50/95/99, LoadNsPerCompletedJob) into the same point.
# The full run doubles as the chaos acceptance: faults are injected
# mid-load (daemon SIGKILL, worker kills, a partition) and the recovery
# invariants are checked — a violation fails the script. -short and
# -gate run a lighter fault-free load.
#
# Compare against the committed baseline of the previous PR with
# scripts/bench_diff.sh (CI gates the smoke run on it); ns_per_op is
# wall-clock, bytes/allocs come from -benchmem.
set -eu

if [ -n "${BENCH_PR:-}" ]; then
	pr="$BENCH_PR"
else
	newest=$(ls BENCH_PR*.json 2>/dev/null | sed 's/^BENCH_PR//; s/\.json$//' |
		grep -E '^[0-9]+$' | sort -n | tail -1)
	pr=$((${newest:-4} + 1))
fi
benchtime="1s"
out="BENCH_PR${pr}.json"
for arg in "$@"; do
	case "$arg" in
	-short) benchtime="1x" ;;
	-gate) benchtime="200ms" ;;
	*) out="$arg" ;;
	esac
done

pattern='BenchmarkFederationValue|BenchmarkIPSS$|BenchmarkUtilityEval|BenchmarkOraclePrefetch'
raw=$(mktemp)
loadlines=$(mktemp)
bindir=$(mktemp -d)
trap 'rm -rf "$raw" "$loadlines" "$bindir"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count 1 \
	. ./internal/utility | tee "$raw" >&2

# Load stage: fedvalload replays multi-tenant traffic against a freshly
# spawned daemon stack and contributes service-level percentiles
# (LoadJobLatencyP99 etc.) to the same trajectory point the
# microbenchmarks land on. The full run is the chaos acceptance — one
# daemon SIGKILL, two worker kills, one partition, recovery invariants
# checked; -short/-gate run a lighter fault-free load.
go build -o "$bindir/" ./cmd/fedvald ./cmd/fedvalworker ./cmd/fedvalload >&2
case "$benchtime" in
1x | 200ms)
	"$bindir/fedvalload" -spawn -jobs 24 -concurrency 6 -batch 3 \
		-fingerprints 4 -fleet 2 -gammas 4,6 \
		-fedvald "$bindir/fedvald" -fedvalworker "$bindir/fedvalworker" \
		-bench-out "$loadlines" >&2
	;;
*)
	"$bindir/fedvalload" -chaos -jobs 80 -concurrency 8 -batch 4 \
		-fingerprints 6 -fleet 2 -daemon-kills 1 -worker-kills 2 -partitions 1 \
		-n 6 -gammas 10,16 \
		-fedvald "$bindir/fedvald" -fedvalworker "$bindir/fedvalworker" \
		-bench-out "$loadlines" >&2
	;;
esac

awk -v pr="$pr" -v go_version="$(go env GOVERSION)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v loadfile="$loadlines" '
BEGIN { n = 0 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
	iters = $2
	ns = $3
	bytes = ""; allocs = ""
	for (i = 4; i <= NF; i++) {
		if ($i == "B/op") bytes = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	line = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, iters, ns)
	if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
	if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
	line = line "}"
	bench[n++] = line
}
END {
	# Merge the load stage lines (same line-shaped objects, commas
	# re-derived below so the array stays valid JSON).
	while ((getline line < loadfile) > 0) {
		sub(/,$/, "", line)
		if (line ~ /"name"/) bench[n++] = line
	}
	printf "{\n"
	printf "  \"pr\": %s,\n", pr
	printf "  \"date\": \"%s\",\n", date
	printf "  \"go\": \"%s\",\n", go_version
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchtime\": \"'"$benchtime"'\",\n"
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) printf "%s%s\n", bench[i], (i < n-1 ? "," : "")
	printf "  ]\n"
	printf "}\n"
}' "$raw" > "$out"

echo "bench: wrote $(grep -c '"name"' "$out") benchmark results to $out" >&2
