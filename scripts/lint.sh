#!/bin/sh
# lint.sh — the static-analysis gate: gofmt formatting, gofmt -s
# simplifications, go vet, and fedvallint (the project-invariant
# analyzers: ctxthread, determinism, durability, lockhygiene,
# obsmetrics). CI runs this as one blocking step; run it locally before
# pushing: sh scripts/lint.sh
set -eu

status=0

echo "== gofmt =="
out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:" >&2
	echo "$out" >&2
	status=1
fi

echo "== gofmt -s (simplify) =="
out=$(gofmt -s -l .)
if [ -n "$out" ]; then
	echo "gofmt -s simplifications available in:" >&2
	gofmt -s -d $out >&2
	status=1
fi

echo "== go vet =="
go vet ./... || status=1

echo "== fedvallint =="
go run ./cmd/fedvallint ./... || status=1

if [ "$status" -eq 0 ]; then
	echo "lint: clean"
fi
exit "$status"
