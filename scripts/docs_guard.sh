#!/bin/sh
# docs_guard.sh — fails CI when the documentation drifts from the code:
# every HTTP route documented in README/OPERATIONS/docs/api.md must be
# registered verbatim in internal/valserve/http.go, and every
# standalone backtick-quoted `-flag` must be defined by some cmd/
# binary. Run from the repo root: sh scripts/docs_guard.sh
set -eu

status=0

# --- Routes -----------------------------------------------------------
# Documented routes look like "GET /v1/jobs/{id}/events"; the Go 1.22
# ServeMux patterns in http.go use the identical spelling, so a plain
# fixed-string grep is the staleness check.
routes=$(grep -ohE '(GET|POST|DELETE) /(v1/[A-Za-z0-9/{}:_-]*|healthz)' \
	README.md OPERATIONS.md docs/api.md | sort -u)
while IFS= read -r route; do
	[ -n "$route" ] || continue
	if ! grep -qF "$route" internal/valserve/http.go; then
		echo "stale docs: route \"$route\" is documented but not registered in internal/valserve/http.go" >&2
		status=1
	fi
done <<EOF
$routes
EOF

# --- Flags ------------------------------------------------------------
# Standalone backticked flags (`-journal`, `-job-ttl`, …) must be
# defined via the flag package in some cmd/*/main.go. Flags quoted with
# arguments (`-data femnist`) are deliberately not matched.
flags=$(grep -ohE '`-[a-z][a-z-]*`' README.md OPERATIONS.md docs/api.md |
	tr -d '`' | sed 's/^-//' | sort -u)
while IFS= read -r f; do
	[ -n "$f" ] || continue
	if ! grep -qE "flag\.[A-Za-z0-9]+\(\"$f\"" cmd/*/main.go; then
		echo "stale docs: flag \"-$f\" is documented but not defined in any cmd/*/main.go" >&2
		status=1
	fi
done <<EOF
$flags
EOF

# --- fedvallint analyzers ---------------------------------------------
# The "Enforced invariants" table in ARCHITECTURE.md documents one row
# per analyzer; its first column must match `fedvallint -list` exactly,
# so adding or removing an analyzer forces the documentation to follow.
documented=$(sed -n '/^## Enforced invariants/,/^## Deployment/p' ARCHITECTURE.md |
	grep -oE '^\| `[a-z]+`' | tr -d '|` ' | sort)
actual=$(go run ./cmd/fedvallint -list | sort)
if [ "$documented" != "$actual" ]; then
	echo "stale docs: ARCHITECTURE.md \"Enforced invariants\" table does not match fedvallint -list" >&2
	echo "documented: $(echo "$documented" | tr '\n' ' ')" >&2
	echo "actual:     $(echo "$actual" | tr '\n' ' ')" >&2
	status=1
fi

if [ "$status" -eq 0 ]; then
	echo "docs guard: all documented routes, flags and analyzers exist"
fi
exit "$status"
