#!/bin/sh
# bench_diff.sh — benchstat-style gate on the recorded perf trajectory:
# compares a candidate bench JSON (e.g. the CI smoke run) against a
# committed baseline and fails when any shared benchmark regressed more
# than the threshold in ns/op.
#
#   sh scripts/bench_diff.sh BENCH_PR5.json bench-smoke.json        # 25% gate
#   sh scripts/bench_diff.sh BENCH_PR5.json bench-smoke.json 10     # 10% gate
#
# Only benchmarks present in both files are compared, so adding or
# retiring a benchmark never breaks the gate. The JSON is the line-shaped
# format scripts/bench.sh emits (one benchmark object per line), which is
# what lets a plain awk pass parse it without jq.
set -eu

if [ $# -lt 2 ]; then
	echo "usage: sh scripts/bench_diff.sh <baseline.json> <candidate.json> [threshold-pct]" >&2
	exit 2
fi
baseline="$1"
candidate="$2"
threshold="${3:-25}"

# A missing or empty baseline is not an error: the first PR on a fresh
# trajectory (or a checkout without committed BENCH_PR*.json points) has
# nothing to gate against, so the diff degrades to a no-op instead of
# failing CI.
if [ ! -f "$baseline" ] || ! grep -q '"name"' "$baseline" 2>/dev/null; then
	echo "bench-diff: no usable baseline at ${baseline:-<none>}; skipping gate" >&2
	exit 0
fi
if [ ! -f "$candidate" ]; then
	echo "bench-diff: missing $candidate" >&2
	exit 2
fi

awk -v threshold="$threshold" -v baseline="$baseline" -v candidate="$candidate" '
function parse(line,   name, ns) {
	if (match(line, /"name": *"[^"]+"/) == 0) return ""
	name = substr(line, RSTART, RLENGTH)
	sub(/"name": *"/, "", name)
	sub(/"$/, "", name)
	return name
}
function parse_ns(line,   ns) {
	if (match(line, /"ns_per_op": *[0-9.]+/) == 0) return -1
	ns = substr(line, RSTART, RLENGTH)
	sub(/"ns_per_op": */, "", ns)
	return ns + 0
}
FNR == 1 { file++ }
/"name"/ {
	name = parse($0)
	ns = parse_ns($0)
	if (name == "" || ns < 0) next
	if (file == 1) base[name] = ns
	else cand[name] = ns
}
END {
	status = 0
	compared = 0
	for (name in cand) {
		if (!(name in base)) continue
		compared++
		delta = (cand[name] - base[name]) * 100.0 / base[name]
		mark = "ok"
		if (delta > threshold) { mark = "REGRESSION"; status = 1 }
		printf "%-12s %-45s %12.0f → %12.0f ns/op  %+7.1f%%\n", mark, name, base[name], cand[name], delta
	}
	if (compared == 0) {
		printf "bench-diff: no shared benchmarks between %s and %s\n", baseline, candidate
		exit 2
	}
	if (status != 0) {
		printf "bench-diff: ns/op regressed more than %s%% against %s\n", threshold, baseline
	} else {
		printf "bench-diff: %d benchmarks within %s%% of %s\n", compared, threshold, baseline
	}
	exit status
}' "$baseline" "$candidate"
