package fedshap_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"time"

	"fedshap"
	"fedshap/internal/combin"
	"fedshap/internal/experiments"
	"fedshap/internal/valserve"
)

// ExampleServiceClient runs a complete submit → wait → report round trip
// against an in-process fedvald daemon. The injected problem is the
// additive game U(S) = Σ_{i∈S}(i+1), whose exact Shapley values are simply
// 1, 2, 3, 4 — so the remote report is easy to verify by eye. Against a
// real daemon only the base URL changes.
func ExampleServiceClient() {
	mgr, err := valserve.NewManager(valserve.Config{
		Workers: 1,
		BuildProblem: func(req fedshap.JobRequest) (*experiments.Problem, error) {
			return experiments.NewFuncProblem("additive-game", req.N, func(s combin.Coalition) float64 {
				var u float64
				for _, i := range s.Members() {
					u += float64(i + 1)
				}
				return u
			}), nil
		},
	})
	if err != nil {
		panic(err)
	}
	defer mgr.Close()
	srv := httptest.NewServer(valserve.NewHandler(mgr))
	defer srv.Close()

	client := fedshap.NewServiceClient(srv.URL)
	ctx := context.Background()
	st, err := client.Submit(ctx, fedshap.JobRequest{N: 4, Algorithm: "perm"})
	if err != nil {
		panic(err)
	}
	fin, err := client.Wait(ctx, st.ID, 5*time.Millisecond, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("state:", fin.State)
	fmt.Printf("values: %.0f\n", fin.Report.Values)
	// Output:
	// state: done
	// values: [1 2 3 4]
}

// ExampleServiceClient_WatchJob consumes a job's server-sent event stream
// instead of polling: the daemon pushes an event for every state
// transition and fresh coalition evaluation, each carrying a full status
// snapshot, until the terminal event ends the stream. Cancelling the
// context mid-stream stops watching (WatchJob returns ctx.Err) without
// affecting the job itself; here it runs as a deferred cleanup.
func ExampleServiceClient_WatchJob() {
	// The gate holds the job until the watcher is attached, so the
	// example's event sequence is deterministic; real jobs take minutes
	// and need no such care.
	gate := make(chan struct{})
	var once sync.Once

	mgr, err := valserve.NewManager(valserve.Config{
		Workers: 1,
		BuildProblem: func(req fedshap.JobRequest) (*experiments.Problem, error) {
			<-gate
			return experiments.NewFuncProblem("additive-game", req.N, func(s combin.Coalition) float64 {
				var u float64
				for _, i := range s.Members() {
					u += float64(i + 1)
				}
				return u
			}), nil
		},
	})
	if err != nil {
		panic(err)
	}
	defer mgr.Close()
	srv := httptest.NewServer(valserve.NewHandler(mgr))
	defer srv.Close()

	client := fedshap.NewServiceClient(srv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // ends the stream early if we bail out before the job does

	st, err := client.Submit(ctx, fedshap.JobRequest{N: 4, Algorithm: "perm"})
	if err != nil {
		panic(err)
	}
	progressed := false
	fin, err := client.WatchJob(ctx, st.ID, func(event string, s *fedshap.JobStatus) {
		// event ∈ submitted | running | progress | done | failed | cancelled;
		// s.FreshEvals / s.Budget is the live progress a UI would render.
		once.Do(func() { close(gate) }) // watcher attached: release the job
		if event == "progress" {
			progressed = true
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("streamed progress:", progressed)
	fmt.Println("final:", fin.State)
	fmt.Printf("values: %.0f\n", fin.Report.Values)
	// Output:
	// streamed progress: true
	// final: done
	// values: [1 2 3 4]
}
