package fedshap_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"fedshap"
	"fedshap/internal/combin"
	"fedshap/internal/experiments"
	"fedshap/internal/valserve"
)

// ExampleServiceClient runs a complete submit → wait → report round trip
// against an in-process fedvald daemon. The injected problem is the
// additive game U(S) = Σ_{i∈S}(i+1), whose exact Shapley values are simply
// 1, 2, 3, 4 — so the remote report is easy to verify by eye. Against a
// real daemon only the base URL changes.
func ExampleServiceClient() {
	mgr, err := valserve.NewManager(valserve.Config{
		Workers: 1,
		BuildProblem: func(req fedshap.JobRequest) (*experiments.Problem, error) {
			return experiments.NewFuncProblem("additive-game", req.N, func(s combin.Coalition) float64 {
				var u float64
				for _, i := range s.Members() {
					u += float64(i + 1)
				}
				return u
			}), nil
		},
	})
	if err != nil {
		panic(err)
	}
	defer mgr.Close()
	srv := httptest.NewServer(valserve.NewHandler(mgr))
	defer srv.Close()

	client := fedshap.NewServiceClient(srv.URL)
	ctx := context.Background()
	st, err := client.Submit(ctx, fedshap.JobRequest{N: 4, Algorithm: "perm"})
	if err != nil {
		panic(err)
	}
	fin, err := client.Wait(ctx, st.ID, 5*time.Millisecond, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("state:", fin.State)
	fmt.Printf("values: %.0f\n", fin.Report.Values)
	// Output:
	// state: done
	// values: [1 2 3 4]
}
