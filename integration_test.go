package fedshap

// End-to-end integration tests: every dataset family through every
// applicable model family through the primary algorithms, at trivially
// small sizes. These exercise the same full pipeline as the experiment
// harness (generate → partition → FedAvg → oracle → valuation → metrics)
// through the public API only.

import (
	"math"
	"testing"
)

type pipelineCase struct {
	name  string
	build func(t *testing.T) *Federation
}

func pipelineCases() []pipelineCase {
	return []pipelineCase{
		{"writers+logreg", func(t *testing.T) *Federation {
			clients, test := FederatedWriters(3, 24, 60, 101)
			return mustFederation(t,
				WithDatasets(clients...), WithTestSet(test),
				WithLogReg(), WithFLRounds(2))
		}},
		{"writers+mlp", func(t *testing.T) *Federation {
			clients, test := FederatedWriters(3, 24, 60, 103)
			return mustFederation(t,
				WithDatasets(clients...), WithTestSet(test),
				WithMLP(8), WithFLRounds(2))
		}},
		{"writers+cnn", func(t *testing.T) *Federation {
			clients, test := FederatedWriters(3, 16, 40, 105)
			return mustFederation(t,
				WithDatasets(clients...), WithTestSet(test),
				WithCNN(2), WithFLRounds(1))
		}},
		{"census+xgb", func(t *testing.T) *Federation {
			pool, occ := CensusTabular(260, 107)
			train, test := SplitTrainTest(pool, 0.75, 108)
			// Re-key occupations onto the training subset by recomputing:
			// simplest robust path is IID partitioning of the train split.
			_ = occ
			clients := PartitionIID(train, 3, 109)
			return mustFederation(t,
				WithDatasets(clients...), WithTestSet(test),
				WithXGB(5, 3))
		}},
		{"synthetic+labelskew+mlp", func(t *testing.T) *Federation {
			pool := SyntheticImages(300, 111)
			train, test := SplitTrainTest(pool, 0.8, 112)
			clients := PartitionLabelSkew(train, 3, 0.7, 113)
			return mustFederation(t,
				WithDatasets(clients...), WithTestSet(test),
				WithMLP(8), WithFLRounds(2))
		}},
		{"fedprox+logreg", func(t *testing.T) *Federation {
			clients, test := FederatedWriters(3, 24, 60, 115)
			return mustFederation(t,
				WithDatasets(clients...), WithTestSet(test),
				WithLogReg(), WithFedProx(0.3), WithFLRounds(2))
		}},
	}
}

func mustFederation(t *testing.T, opts ...Option) *Federation {
	t.Helper()
	fed, err := NewFederation(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func TestPipelineExactVsIPSS(t *testing.T) {
	for _, c := range pipelineCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			fed := c.build(t)
			exact, err := fed.ExactValues(1)
			if err != nil {
				t.Fatal(err)
			}
			approx, err := fed.Value(IPSS(fed.RecommendedGamma()), 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(exact.Values) != fed.N() || len(approx.Values) != fed.N() {
				t.Fatalf("value lengths %d/%d for n=%d",
					len(exact.Values), len(approx.Values), fed.N())
			}
			for i := range exact.Values {
				if math.IsNaN(exact.Values[i]) || math.IsNaN(approx.Values[i]) {
					t.Fatalf("NaN value at client %d", i)
				}
			}
			// Efficiency holds for the exact values.
			all := make([]int, fed.N())
			for i := range all {
				all[i] = i
			}
			want := fed.Utility(all) - fed.Utility(nil)
			if math.Abs(exact.Values.Sum()-want) > 1e-9 {
				t.Errorf("efficiency violated: Σφ=%v want %v", exact.Values.Sum(), want)
			}
		})
	}
}

func TestPipelineSamplersStayInBudget(t *testing.T) {
	clients, test := FederatedWriters(4, 20, 50, 121)
	fed := mustFederation(t,
		WithDatasets(clients...), WithTestSet(test),
		WithLogReg(), WithFLRounds(2))
	gamma := 9
	for _, alg := range []Valuer{IPSS(gamma), Stratified(MCScheme, gamma), Stratified(CCScheme, gamma)} {
		rep, err := fed.Value(alg, 3)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		// Stratified anchors size-1 marginals on ∅, so allow +1.
		if rep.Evaluations > gamma+1 {
			t.Errorf("%s used %d evaluations for γ=%d", alg.Name(), rep.Evaluations, gamma)
		}
	}
}

func TestPipelineDeterminism(t *testing.T) {
	build := func() *Federation {
		clients, test := FederatedWriters(3, 20, 50, 131)
		fed, err := NewFederation(
			WithDatasets(clients...), WithTestSet(test),
			WithLogReg(), WithFLRounds(2), WithSeed(9))
		if err != nil {
			panic(err)
		}
		return fed
	}
	a, err := build().Value(IPSS(6), 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().Value(IPSS(6), 77)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("same-seed pipelines diverge at client %d", i)
		}
	}
}
