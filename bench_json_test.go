package fedshap

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchTrajectoryFiles validates every committed BENCH_PR*.json
// point: scripts/bench_diff.sh and the CI trajectory gate parse these
// files, so a malformed point (a hand edit, a half-written run) would
// silently drop benchmarks from the regression gate. Each file must be
// valid JSON with the keys bench.sh emits and a non-empty benchmark list
// whose entries all carry a name and a ns_per_op measurement.
func TestBenchTrajectoryFiles(t *testing.T) {
	files, err := filepath.Glob("BENCH_PR*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no committed BENCH_PR*.json points")
	}
	for _, file := range files {
		t.Run(file, func(t *testing.T) {
			raw, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			var point struct {
				PR         *int   `json:"pr"`
				Date       string `json:"date"`
				Go         string `json:"go"`
				Benchmarks []struct {
					Name    string   `json:"name"`
					Iters   *int     `json:"iters"`
					NsPerOp *float64 `json:"ns_per_op"`
				} `json:"benchmarks"`
			}
			if err := json.Unmarshal(raw, &point); err != nil {
				t.Fatalf("not valid JSON: %v", err)
			}
			if point.PR == nil || point.Date == "" || point.Go == "" {
				t.Errorf("missing header keys: pr=%v date=%q go=%q", point.PR, point.Date, point.Go)
			}
			if len(point.Benchmarks) == 0 {
				t.Fatal("empty benchmarks array")
			}
			for i, b := range point.Benchmarks {
				if b.Name == "" {
					t.Errorf("benchmark %d has no name", i)
				}
				if b.NsPerOp == nil {
					t.Errorf("benchmark %d (%s) has no ns_per_op", i, b.Name)
				}
				if b.Iters == nil {
					t.Errorf("benchmark %d (%s) has no iters", i, b.Name)
				}
			}
		})
	}
}
